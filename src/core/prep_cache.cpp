#include "core/prep_cache.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <variant>

#include "backends/prepare.hpp"
#include "core/analysis_plan.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"

namespace proof {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- structural fingerprint --------------------------------------------------

class Fnv {
 public:
  void mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>((v >> (8 * i)) & 0xFFu));
    }
  }
  void mix(const std::string& s) {
    mix(static_cast<uint64_t>(s.size()));
    for (const char c : s) {
      byte(static_cast<unsigned char>(c));
    }
  }
  void mix(double d) {
    uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
  [[nodiscard]] uint64_t value() const { return hash_; }

 private:
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001B3ull;
  }
  uint64_t hash_ = 0xCBF29CE484222325ull;
};

void mix_attrs(Fnv& fnv, const AttrMap& attrs) {
  for (const auto& [key, value] : attrs.raw()) {
    fnv.mix(key);
    fnv.mix(static_cast<uint64_t>(value.index()));
    if (const auto* i = std::get_if<int64_t>(&value)) {
      fnv.mix(static_cast<uint64_t>(*i));
    } else if (const auto* d = std::get_if<double>(&value)) {
      fnv.mix(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      fnv.mix(*s);
    } else if (const auto* is = std::get_if<std::vector<int64_t>>(&value)) {
      fnv.mix(static_cast<uint64_t>(is->size()));
      for (const int64_t v : *is) {
        fnv.mix(static_cast<uint64_t>(v));
      }
    } else if (const auto* ds = std::get_if<std::vector<double>>(&value)) {
      fnv.mix(static_cast<uint64_t>(ds->size()));
      for (const double v : *ds) {
        fnv.mix(v);
      }
    }
  }
}

/// Single-traversal fingerprint core: mixes the graph into the exact and/or
/// structural accumulator so compute_graph_keys pays one walk for both keys.
///
/// The structural stream is shape-erased: the graph name is dropped (decode
/// positions and renamed copies of a model share structure) and non-param
/// tensors contribute only their rank — batch and sequence/position dims are
/// symbolized.  Param shapes stay (they size the weight traffic recipes
/// replay) and node attrs stay verbatim: attrs are structural inputs to
/// fusion/lowering, and the per-cell attr divergence set_batch_size creates
/// is handled by instantiate_plan_graph's attr restoration, never by the key.
void mix_graph(const Graph& model, Fnv* exact, Fnv* structural) {
  if (exact != nullptr) {
    exact->mix(model.name());
  }
  if (structural != nullptr) {
    structural->mix(static_cast<uint64_t>(FingerprintMode::kStructural));
  }
  const auto both = [&](const auto& v) {
    if (exact != nullptr) {
      exact->mix(v);
    }
    if (structural != nullptr) {
      structural->mix(v);
    }
  };
  for (const std::string& in : model.inputs()) {
    both(in);
  }
  for (const std::string& out : model.outputs()) {
    both(out);
  }
  both(static_cast<uint64_t>(model.num_nodes()));
  for (const Node& node : model.nodes()) {
    both(node.name);
    both(node.op_type);
    for (const std::string& t : node.inputs) {
      both(t);
    }
    for (const std::string& t : node.outputs) {
      both(t);
    }
    if (exact != nullptr) {
      mix_attrs(*exact, node.attrs);
    }
    if (structural != nullptr) {
      mix_attrs(*structural, node.attrs);
    }
  }
  for (const auto& [name, desc] : model.tensors()) {
    both(name);
    both(static_cast<uint64_t>(desc.dtype));
    both(static_cast<uint64_t>(desc.is_param ? 1 : 0));
    if (exact != nullptr) {
      for (const int64_t dim : desc.shape.dims()) {
        exact->mix(static_cast<uint64_t>(dim));
      }
    }
    if (structural != nullptr) {
      if (desc.is_param) {
        for (const int64_t dim : desc.shape.dims()) {
          structural->mix(static_cast<uint64_t>(dim));
        }
      } else {
        structural->mix(static_cast<uint64_t>(desc.shape.rank()));
      }
    }
  }
}

}  // namespace

uint64_t graph_fingerprint(const Graph& model, FingerprintMode mode) {
  Fnv fnv;
  if (mode == FingerprintMode::kExact) {
    mix_graph(model, &fnv, nullptr);
  } else {
    mix_graph(model, nullptr, &fnv);
  }
  return fnv.value();
}

GraphKeys compute_graph_keys(const Graph& model) {
  Fnv exact;
  Fnv structural;
  mix_graph(model, &exact, &structural);
  return GraphKeys{exact.value(), structural.value()};
}

// --- PreparedEngine ----------------------------------------------------------

PreparedEngine::PreparedEngine(backends::Engine engine_in,
                               mapping::LayerMapping mapping_in)
    : engine(std::move(engine_in)),
      ar(engine.analysis_graph()),
      oar(ar),
      mapping(std::move(mapping_in)) {}

PreparedEngine::PreparedEngine(backends::Engine engine_in,
                               mapping::LayerMapping mapping_in, PreInferredTag)
    : engine(std::move(engine_in)),
      ar(engine.shared_analysis_graph(), AnalyzeRepresentation::TrustedGraphTag{}),
      oar(ar),
      mapping(std::move(mapping_in)) {}

PreparedEngine::PreparedEngine(backends::Engine engine_in,
                               mapping::LayerMapping mapping_in,
                               AnalyzeRepresentation ar_in, PreInferredTag)
    : engine(std::move(engine_in)),
      ar(std::move(ar_in)),
      oar(ar),
      mapping(std::move(mapping_in)) {}

// --- PrepCache ---------------------------------------------------------------

namespace {

/// Forces a graph's lazy name/producer/consumer indices to exist so every
/// later const lookup on a shared entry is a pure read (the indices are
/// rebuilt on first use otherwise — a data race across threads).
void warm_graph_indices(const Graph& g) { g.warm_indices(); }

struct PlanEntry {
  backends::BuildPlan plan;
  mapping::LayerMapping mapping;
};

using PlanKey = std::tuple<uint64_t, std::string, std::string, DType>;
using EngineKey = std::tuple<uint64_t, std::string, std::string, DType, int64_t>;

bool env_flag_enabled(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return true;
  }
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "off") == 0);
}

bool env_enables_cache() { return env_flag_enabled("PROOF_PREP_CACHE"); }

/// A/B switch for the shape-polymorphic AnalysisPlan level; off falls back
/// to the legacy exact-fingerprint plan level (the seed path).
bool env_enables_plan_cache() { return env_flag_enabled("PROOF_PLAN_CACHE"); }

size_t env_capacity_or(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      return static_cast<size_t>(v);  // 0 = unbounded
    }
  }
  return fallback;
}

/// Default FIFO eviction bound (memory backstop); PROOF_PREP_CACHE_CAP
/// overrides it at startup, set_capacity() at runtime.
size_t env_capacity() { return env_capacity_or("PROOF_PREP_CACHE_CAP", 512); }

size_t env_plan_capacity() {
  return env_capacity_or("PROOF_PLAN_CACHE_CAP", 128);
}

/// Builds a PreparedEngine, reusing `cached_plan`'s fusion plan + mapping when
/// provided; fills `*out_plan` (when non-null) for legacy plan-level
/// publication and `*out_analysis_plan` (when non-null) with the frozen
/// shape-polymorphic structure phase for AnalysisPlan publication.
std::shared_ptr<const PreparedEngine> build_prepared(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config,
    const PlanEntry* cached_plan, std::optional<PlanEntry>* out_plan,
    std::optional<AnalysisPlan>* out_analysis_plan = nullptr) {
  Graph prepared = backends::prepare_model(model, config, platform);
  backends::BuildPlan plan = [&] {
    PROOF_SPAN("prepare.plan");
    return cached_plan != nullptr ? cached_plan->plan : backend.plan(prepared);
  }();
  backends::Engine engine = [&] {
    PROOF_SPAN("prepare.lower");
    return backend.lower(std::move(prepared), plan, config, platform);
  }();

  PROOF_SPAN("prepare.analysis");
  const double t0 = now_s();
  auto entry = std::make_shared<PreparedEngine>(std::move(engine),
                                                mapping::LayerMapping{});
  if (cached_plan != nullptr) {
    entry->mapping = cached_plan->mapping;
    mapping::apply_mapping(entry->engine, entry->oar, entry->mapping);
  } else {
    entry->mapping = mapping::map_layers(entry->engine, entry->oar);
  }
  entry->mapping_coverage = entry->mapping.node_coverage(entry->ar.num_nodes());
  entry->unmapped_layers = entry->mapping.count(mapping::MapMethod::kUnmapped);
  entry->analysis_time_s = now_s() - t0;

  // Shared entries are read concurrently; materialize every lazy index now.
  warm_graph_indices(entry->engine.analysis_graph());
  warm_graph_indices(entry->ar.graph());

  if (out_analysis_plan != nullptr) {
    *out_analysis_plan =
        build_analysis_plan(entry->engine, plan, entry->mapping);
  }
  if (out_plan != nullptr) {
    *out_plan = PlanEntry{std::move(plan), entry->mapping};
  }
  return entry;
}

/// Plan-cache hit path: instantiates a frozen AnalysisPlan for one cell.
/// One graph copy + one shape-inference pass + recipe/mapping replay — no
/// validation, no fusion planning, no mapping search.  Byte-identical to
/// build_prepared over the same (model, config).
std::shared_ptr<const PreparedEngine> instantiate_prepared(
    const AnalysisPlan& plan, const Graph& model,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config) {
  PROOF_SPAN("prepare.instantiate");
  const std::shared_ptr<const Graph> g = [&] {
    PROOF_SPAN("instantiate.graph");
    return std::make_shared<const Graph>(
        instantiate_plan_graph(plan, model, config));
  }();
  // AR first: its per-node evaluations feed the recipe replay, and the
  // engine shares the same graph — one graph, analyzed once, per cell.
  // analysis_time_s mirrors build_prepared's accounting (AR/OAR + mapping,
  // not lowering), so the replay in the middle is excluded.
  const double t0 = now_s();
  AnalyzeRepresentation ar = [&] {
    PROOF_SPAN("instantiate.analysis");
    return AnalyzeRepresentation(g, AnalyzeRepresentation::TrustedGraphTag{});
  }();
  double analysis_s = now_s() - t0;
  std::vector<backends::BackendLayer> layers = [&] {
    PROOF_SPAN("instantiate.replay");
    return replay_plan_layers(plan, *g, platform, &ar.analyses());
  }();
  backends::Engine engine(plan.backend_id, g, std::move(layers), config,
                          plan.stream_policy);

  const double t1 = now_s();
  auto entry = std::make_shared<PreparedEngine>(
      std::move(engine), plan.mapping, std::move(ar),
      PreparedEngine::PreInferredTag{});
  mapping::apply_mapping(entry->engine, entry->oar, entry->mapping,
                         &plan.mapping_node_ids);
  entry->mapping_coverage = plan.mapping_coverage;
  entry->unmapped_layers = plan.unmapped_layers;
  entry->analysis_time_s = analysis_s + (now_s() - t1);

  // Engine and AR share one analysis graph here; one warm covers both (and
  // clone_warm already produced it warm — this is a cheap validity check).
  warm_graph_indices(entry->engine.analysis_graph());
  return entry;
}

}  // namespace

std::shared_ptr<const PreparedEngine> prepare_engine(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config) {
  return build_prepared(model, backend, platform, config, nullptr, nullptr);
}

struct PrepCache::Impl {
  mutable std::mutex mu;
  bool enabled = env_enables_cache();
  size_t capacity = env_capacity();
  PrepCacheStats stats;
  std::map<EngineKey, std::shared_future<std::shared_ptr<const PreparedEngine>>>
      engines;
  std::list<EngineKey> engine_order;  ///< insertion order, for FIFO eviction
  std::map<PlanKey, std::shared_future<std::shared_ptr<const PlanEntry>>> plans;

  // Shape-polymorphic AnalysisPlan level.  Keyed on the *structural*
  // fingerprint (PlanKey's hash slot holds the structural value here, the
  // exact value in `plans` above); unused while plan_cache_enabled is false.
  bool plan_cache_enabled = env_enables_plan_cache();
  size_t plan_capacity = env_plan_capacity();
  std::map<PlanKey, std::shared_future<std::shared_ptr<const AnalysisPlan>>>
      analysis_plans;
  std::list<PlanKey> plan_order;  ///< insertion order, for FIFO eviction
};

PrepCache::PrepCache() : impl_(std::make_unique<Impl>()) {}
PrepCache::~PrepCache() = default;

PrepCache& PrepCache::instance() {
  // Leaked singleton: cached engines may be referenced from arbitrary threads
  // at shutdown, so never run the destructor.
  static PrepCache* cache = new PrepCache();
  return *cache;
}

void PrepCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->engines.clear();
  impl_->engine_order.clear();
  impl_->plans.clear();
  impl_->analysis_plans.clear();
  impl_->plan_order.clear();
}

PrepCacheStats PrepCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void PrepCache::reset_stats() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->stats = PrepCacheStats{};
}

void PrepCache::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->enabled = enabled;
}

bool PrepCache::enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->enabled;
}

size_t PrepCache::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->engines.size();
}

size_t PrepCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->capacity;
}

void PrepCache::set_capacity(size_t capacity) {
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->capacity = capacity;
    // Shrink immediately: drop the oldest ready entries until within bound.
    while (impl_->capacity != 0 &&
           impl_->engine_order.size() > impl_->capacity) {
      const EngineKey victim = impl_->engine_order.front();
      impl_->engine_order.pop_front();
      impl_->engines.erase(victim);
      ++impl_->stats.evictions;
      ++evicted;
    }
  }
  if (evicted > 0) {
    PROOF_COUNT("prep_cache.evictions", evicted);
  }
}

void PrepCache::set_plan_cache_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->plan_cache_enabled = enabled;
}

bool PrepCache::plan_cache_enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->plan_cache_enabled;
}

size_t PrepCache::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->analysis_plans.size();
}

size_t PrepCache::plan_cache_capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->plan_capacity;
}

void PrepCache::set_plan_cache_capacity(size_t capacity) {
  size_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->plan_capacity = capacity;
    while (impl_->plan_capacity != 0 &&
           impl_->plan_order.size() > impl_->plan_capacity) {
      const PlanKey victim = impl_->plan_order.front();
      impl_->plan_order.pop_front();
      impl_->analysis_plans.erase(victim);
      ++impl_->stats.plan_cache_evictions;
      ++evicted;
    }
  }
  if (evicted > 0) {
    PROOF_COUNT("plan_cache.evictions", evicted);
  }
}

std::shared_ptr<const PreparedEngine> PrepCache::get_or_prepare(
    const Graph& model, const backends::Backend& backend,
    const hw::PlatformDesc& platform, const backends::BuildConfig& config,
    const GraphKeys* keys) {
  if (!enabled()) {
    return prepare_engine(model, backend, platform, config);
  }

  const GraphKeys graph_keys =
      keys != nullptr ? *keys : compute_graph_keys(model);
  const EngineKey ekey{graph_keys.exact, backend.id(), platform.id,
                       config.dtype, config.batch};
  const PlanKey pkey{graph_keys.exact, backend.id(), platform.id, config.dtype};
  const PlanKey skey{graph_keys.structural, backend.id(), platform.id,
                     config.dtype};

  // Registered under the lock when this call is the builder for its key, so
  // concurrent callers of the same key wait on the winner's in-flight build.
  std::promise<std::shared_ptr<const PreparedEngine>> engine_promise;
  std::optional<std::promise<std::shared_ptr<const PlanEntry>>> plan_promise;
  std::shared_future<std::shared_ptr<const PlanEntry>> plan_future;
  bool have_plan_future = false;

  // Shape-polymorphic level (used instead of the legacy level when enabled).
  bool use_plan_cache = false;
  std::optional<std::promise<std::shared_ptr<const AnalysisPlan>>>
      aplan_promise;
  std::shared_future<std::shared_ptr<const AnalysisPlan>> aplan_future;
  bool have_aplan_future = false;

  std::shared_future<std::shared_ptr<const PreparedEngine>> ready;
  bool is_hit = false;
  {
    // The obs counters are bumped here, inside the same critical section as
    // the struct ledger, so the two stay reconciled: every lookup lands its
    // lookup + (hit xor miss) increments back-to-back under the lock instead
    // of counting the hit only after a potentially long blocking wait on the
    // builder's future — a concurrently sampled stats snapshot (the serve
    // daemon's `stats` endpoint) would otherwise read lookups > hits + misses
    // for the whole duration of a build.
    std::lock_guard<std::mutex> lock(impl_->mu);
    PROOF_COUNT("prep_cache.lookups", 1);
    const auto it = impl_->engines.find(ekey);
    if (it != impl_->engines.end()) {
      ++impl_->stats.engine_hits;
      PROOF_COUNT("prep_cache.hits", 1);
      ready = it->second;
      is_hit = true;
    } else {
      ++impl_->stats.engine_misses;
      PROOF_COUNT("prep_cache.misses", 1);
      ready = impl_->engines.emplace(ekey, engine_promise.get_future().share())
                  .first->second;
      impl_->engine_order.push_back(ekey);
      use_plan_cache = impl_->plan_cache_enabled;
      if (use_plan_cache) {
        // AnalysisPlan level: structural-fingerprint keyed, shared across
        // batch sizes and decode positions.  Its hits/misses also count into
        // plan_hits/plan_misses — a plan-cache hit skips the same fusion
        // planning + mapping search the legacy level skipped.
        const auto ait = impl_->analysis_plans.find(skey);
        if (ait != impl_->analysis_plans.end()) {
          ++impl_->stats.plan_hits;
          ++impl_->stats.plan_cache_hits;
          PROOF_COUNT("prep_cache.plan_hits", 1);
          PROOF_COUNT("plan_cache.hits", 1);
          aplan_future = ait->second;
          have_aplan_future = true;
        } else {
          ++impl_->stats.plan_misses;
          ++impl_->stats.plan_cache_misses;
          PROOF_COUNT("prep_cache.plan_misses", 1);
          PROOF_COUNT("plan_cache.misses", 1);
          aplan_promise.emplace();
          impl_->analysis_plans.emplace(skey,
                                        aplan_promise->get_future().share());
          impl_->plan_order.push_back(skey);
          // FIFO memory backstop; never evict the plan just inserted.
          while (impl_->plan_capacity != 0 &&
                 impl_->plan_order.size() > impl_->plan_capacity) {
            const PlanKey victim = impl_->plan_order.front();
            impl_->plan_order.pop_front();
            if (!(victim == skey)) {
              impl_->analysis_plans.erase(victim);
              ++impl_->stats.plan_cache_evictions;
              PROOF_COUNT("plan_cache.evictions", 1);
            } else {
              impl_->plan_order.push_back(victim);
              break;
            }
          }
        }
      } else {
        const auto pit = impl_->plans.find(pkey);
        if (pit != impl_->plans.end()) {
          ++impl_->stats.plan_hits;
          PROOF_COUNT("prep_cache.plan_hits", 1);
          plan_future = pit->second;
          have_plan_future = true;
        } else {
          ++impl_->stats.plan_misses;
          PROOF_COUNT("prep_cache.plan_misses", 1);
          plan_promise.emplace();
          impl_->plans.emplace(pkey, plan_promise->get_future().share());
        }
      }
      // FIFO memory backstop; never evict the entry just inserted.
      while (impl_->capacity != 0 &&
             impl_->engine_order.size() > impl_->capacity) {
        const EngineKey victim = impl_->engine_order.front();
        impl_->engine_order.pop_front();
        if (!(victim == ekey)) {
          impl_->engines.erase(victim);
          ++impl_->stats.evictions;
          PROOF_COUNT("prep_cache.evictions", 1);
        } else {
          impl_->engine_order.push_back(victim);
          break;
        }
      }
    }
  }

  if (is_hit) {
    return ready.get();  // rethrows the builder's exception, if any
  }

  // This call is the builder for its key.
  try {
    std::shared_ptr<const PreparedEngine> entry;
    if (use_plan_cache && have_aplan_future) {
      // Structural hit: instantiate the frozen plan.  A fingerprint collision
      // (structurally incompatible graph) or an instantiation error falls
      // back to a full build without touching the published plan.
      const std::shared_ptr<const AnalysisPlan> aplan = aplan_future.get();
      if (plan_compatible(*aplan, model)) {
        try {
          entry = instantiate_prepared(*aplan, model, platform, config);
        } catch (const Error&) {
          PROOF_COUNT("plan_cache.fallbacks", 1);
        }
      } else {
        {
          std::lock_guard<std::mutex> lock(impl_->mu);
          ++impl_->stats.plan_cache_collisions;
        }
        PROOF_COUNT("plan_cache.collisions", 1);
      }
      if (entry == nullptr) {
        entry = build_prepared(model, backend, platform, config, nullptr,
                               nullptr);
      }
    } else if (use_plan_cache) {
      // This call is also the builder for its structural key: run the full
      // pipeline once and freeze the structure phase for every later cell.
      const auto t0 = std::chrono::steady_clock::now();
      std::optional<AnalysisPlan> built_aplan;
      entry = build_prepared(model, backend, platform, config, nullptr,
                             nullptr, &built_aplan);
      aplan_promise->set_value(
          std::make_shared<const AnalysisPlan>(std::move(*built_aplan)));
      const uint64_t build_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stats.plan_cache_build_ns += build_ns;
      }
      PROOF_COUNT("plan_cache.build_ns", build_ns);
    } else {
      const std::shared_ptr<const PlanEntry> plan_entry =
          have_plan_future ? plan_future.get() : nullptr;
      std::optional<PlanEntry> built_plan;
      entry =
          build_prepared(model, backend, platform, config, plan_entry.get(),
                         plan_promise.has_value() ? &built_plan : nullptr);
      if (plan_promise.has_value()) {
        plan_promise->set_value(
            std::make_shared<const PlanEntry>(std::move(*built_plan)));
      }
    }
    engine_promise.set_value(entry);
    return entry;
  } catch (...) {
    // Publish the failure to current waiters, then drop the keys so later
    // calls rebuild instead of replaying a stale error.
    if (plan_promise.has_value()) {
      plan_promise->set_exception(std::current_exception());
    }
    if (aplan_promise.has_value()) {
      aplan_promise->set_exception(std::current_exception());
    }
    engine_promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(impl_->mu);
      impl_->engines.erase(ekey);
      impl_->engine_order.remove(ekey);
      if (plan_promise.has_value()) {
        impl_->plans.erase(pkey);
      }
      if (aplan_promise.has_value()) {
        impl_->analysis_plans.erase(skey);
        impl_->plan_order.remove(skey);
      }
    }
    throw;
  }
}

}  // namespace proof

// PRoof core orchestrator: model + backend + platform -> profile report.
//
// Mirrors the paper's CLI pipeline (Figure 1): build the Analyze
// Representation, build/optimize the model on the chosen runtime backend,
// run layer mapping to obtain the Optimized Analyze Representation, collect
// per-backend-layer latency from the runtime's built-in profiler, attach
// FLOP / memory metrics either from the analytical model ("predicted") or
// from the hardware-counter profiler ("measured"), and assemble end-to-end +
// layer-wise roofline analyses.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/analyze_representation.hpp"
#include "analysis/critical_path/critical_path.hpp"
#include "analysis/critical_path/timeline.hpp"
#include "backends/backend.hpp"
#include "hw/power.hpp"
#include "mapping/layer_mapping.hpp"
#include "roofline/roofline.hpp"

namespace proof {

struct GraphKeys;  // core/prep_cache.hpp

/// How FLOP / memory metrics are obtained (paper Table 1's last row).
enum class MetricMode : uint8_t {
  kPredicted,  ///< analytical model (works on every platform, negligible cost)
  kMeasured,   ///< hardware-counter profiler (NCU-like; where available)
  kAuto,       ///< measured when the platform has a counter tool, else predicted
};

struct ProfileOptions {
  std::string platform_id;          ///< required (see hw::PlatformRegistry)
  std::string backend_id;           ///< empty = platform's default runtime
  DType dtype = DType::kF16;
  int64_t batch = 1;
  MetricMode mode = MetricMode::kPredicted;
  hw::ClockSetting clocks;          ///< DVFS overrides (§4.6)
  int iterations = 50;              ///< built-in profiler averaging length
  /// Execution streams to simulate.  1 (default) is the seed-faithful serial
  /// mode: no timeline, no critical_path report section, byte-identical
  /// output.  0 = the backend's StreamPolicy maximum; N > 1 is clamped to
  /// it.  Multi-stream runs attach an ExecutionTimeline plus a critical-path
  /// analysis to the report (see analysis/critical_path/).
  int streams = 1;
};

/// Per-backend-layer profiling result.
struct LayerReport {
  std::string backend_layer;
  std::vector<std::string> model_nodes;   ///< mapped model-design nodes
  mapping::MapMethod method = mapping::MapMethod::kUnmapped;
  OpClass cls = OpClass::kElementwise;
  bool is_reorder = false;
  double latency_s = 0.0;
  double flops = 0.0;   ///< per the selected metric mode
  double bytes = 0.0;
  /// Device kernels this layer lowered to (Figure-3 drill-down).
  std::vector<std::string> kernels;

  [[nodiscard]] roofline::Point to_point() const;
};

struct ProfileReport {
  std::string model_name;
  std::string backend_name;
  std::string platform_name;
  ProfileOptions options;

  std::vector<LayerReport> layers;
  roofline::Analysis roofline;      ///< ceilings + layer points + end-to-end

  /// Multi-stream mode only (options.streams != 1): the emitted execution
  /// timeline and its critical-path analysis.  Absent in serial mode so
  /// serial reports stay byte-identical to the seed.
  std::optional<ExecutionTimeline> timeline;
  std::optional<critpath::Report> critical_path;

  // Mapping quality.
  double mapping_coverage = 0.0;    ///< fraction of model nodes claimed
  size_t unmapped_layers = 0;

  // Overheads (paper §4.2): the analytical path costs microseconds; counter
  // profiling costs minutes.
  double analysis_time_s = 0.0;     ///< wall time of analysis + mapping
  double counter_profiling_time_s = 0.0;  ///< simulated NCU replay time

  // Whole-run aggregates.
  double total_latency_s = 0.0;
  double power_w = 0.0;             ///< board power under this workload
  hw::Utilization utilization;

  [[nodiscard]] double throughput_per_s() const {
    return total_latency_s > 0.0
               ? static_cast<double>(options.batch) / total_latency_s
               : 0.0;
  }
};

class Profiler {
 public:
  explicit Profiler(ProfileOptions options);

  /// Full pipeline on an arbitrary model graph.  `keys`, when non-null,
  /// supplies the model's precomputed cache fingerprints (see
  /// compute_graph_keys); sweeps hoist the hashing out of their inner loops
  /// so per-cell cache lookups skip re-walking the shared model graph.
  [[nodiscard]] ProfileReport run(const Graph& model,
                                  const GraphKeys* keys = nullptr) const;

  /// Convenience: profile a model-zoo entry by id.
  [[nodiscard]] ProfileReport run_zoo(const std::string& model_id) const;

  [[nodiscard]] const ProfileOptions& options() const { return options_; }

 private:
  ProfileOptions options_;
};

}  // namespace proof

#!/usr/bin/env bash
# End-to-end smoke of the `proof serve` daemon over a unix socket:
#  1. start the daemon, wait for its "listening <endpoint>" ready line;
#  2. drive it with concurrent clients (two analyzes + a stats call);
#  3. check the daemon's analyze output matches the single-shot CLI after
#     normalizing the two wall-clock-dependent timing fields;
#  4. graceful shutdown via the `shutdown` method; the daemon must drain
#     and exit 0.
#
# Usage: scripts/serve_smoke.sh [path/to/proof]
set -euo pipefail

cd "$(dirname "$0")/.."

PROOF="${1:-build/tools/proof}"
SOCK="/tmp/proof_smoke_$$.sock"
OUT="$(mktemp -d)"
SERVER_PID=""
trap '[ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null; rm -rf "$OUT" "$SOCK"' EXIT

# Zero the fields that legitimately differ run to run (analysis wall time).
normalize() {
  sed -E 's/"(analysis_time_s|counter_profiling_time_s)":[0-9.eE+-]+/"\1":0/g' "$1"
}

"$PROOF" serve --listen "unix:$SOCK" --preload resnet50 \
  > "$OUT/serve.log" 2> "$OUT/serve.err" &
SERVER_PID=$!

for _ in $(seq 1 100); do
  grep -q '^listening ' "$OUT/serve.log" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$OUT/serve.err"; exit 1; }
  sleep 0.1
done
grep -q '^listening ' "$OUT/serve.log"
echo "daemon ready: $(cat "$OUT/serve.log")"

# Concurrent traffic: two heavy analyzes race a stats call.
"$PROOF" client --connect "unix:$SOCK" --method analyze \
  --model resnet50 --platform a100 --dtype fp16 --batch 4 --mode predicted \
  --json "$OUT/daemon_resnet50.json" > /dev/null &
A=$!
"$PROOF" client --connect "unix:$SOCK" --method analyze \
  --model shufflenetv2_10 --platform a100 --dtype fp16 --batch 4 \
  --mode predicted --json "$OUT/daemon_shufflenet.json" > /dev/null &
B=$!
"$PROOF" client --connect "unix:$SOCK" --method stats > "$OUT/stats.json"
wait "$A" "$B"
test -s "$OUT/daemon_resnet50.json"
test -s "$OUT/daemon_shufflenet.json"
grep -q '"model_pool"' "$OUT/stats.json"
grep -q '"prep_cache"' "$OUT/stats.json"

# The daemon's analyze must match the single-shot CLI (PROOF_OBS=0 keeps the
# wall-clock self-profile section out of the single-shot report, matching the
# daemon's determinism contract).
PROOF_OBS=0 "$PROOF" profile --model resnet50 --platform a100 --dtype fp16 \
  --batch 4 --mode predicted --json "$OUT/single_resnet50.json" > /dev/null
normalize "$OUT/daemon_resnet50.json" > "$OUT/daemon_norm.json"
normalize "$OUT/single_resnet50.json" > "$OUT/single_norm.json"
cmp "$OUT/daemon_norm.json" "$OUT/single_norm.json"
echo "daemon analyze matches single-shot CLI (normalized)"

# Graceful shutdown: ack first, then drain; daemon exits 0.
"$PROOF" client --connect "unix:$SOCK" --method shutdown > /dev/null
wait "$SERVER_PID"
SERVER_PID=""
echo "serve smoke: ok"

#!/usr/bin/env bash
# Builds the suite with ThreadSanitizer (-DPROOF_SANITIZE=thread) into
# build-tsan/ and runs the concurrency-sensitive tests: the thread pool, the
# parallel-sweep determinism suite, the preparation cache (including its
# dedicated concurrency suite), the observability layer's sharded
# metrics/trace buffer, and the serve daemon (protocol framing over real
# sockets plus the full client/server e2e suite — acceptor, sessions,
# admission ledger, drain), and the critical-path engine (multi-stream
# schedule + DAG reconstruction from several threads over one shared built
# engine), and the guarded optimizer (variants measured concurrently on the
# pool against a shared incumbent graph, plus its jobs-1-vs-4 byte-identity
# suite), and the LLM decode sweep (batch x position grid fanned out over
# the pool with index-written points, plus its own jobs-1-vs-4 byte-identity
# test), and the shape-polymorphic AnalysisPlan cache (mixed batch sizes
# instantiating one shared frozen plan concurrently, eviction under a
# capacity bound, and the disabled legacy fallback).  Any data race in the
# pool, the cache's shared PreparedEngine entries, the graphs' lazy index
# maps, the obs shards or the daemon's session teardown fails the run.
#
# Usage: scripts/check_tsan.sh [extra gtest filter]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
FILTER="${1:-ThreadPool.*:ParallelDeterminism.*:PrepCache.*:BatchSweep.*:SweepText.*:Obs.*:ServeJson.*:ServeFraming.*:ServeEnvelope.*:ServeDeadline.*:ServeE2e.*:*ServeGolden*:CriticalPathConcurrency.*:CriticalPath.ReconstructsProgramOrderAndSyncEdges:OptGuard.*:OptDeterminism.*:DecodeSweep.*:PlanCache.*}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DPROOF_SANITIZE=thread \
  -DPROOF_BUILD_BENCH=OFF \
  -DPROOF_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$(nproc)" --target proof_tests

# halt_on_error: fail fast on the first race report.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "$BUILD_DIR/tests/proof_tests" --gtest_filter="$FILTER"

echo "TSan clean: $FILTER"

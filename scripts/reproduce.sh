#!/usr/bin/env bash
# Full reproduction pipeline: build, test, regenerate every table/figure.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo
echo "=== regenerating all tables and figures (artifacts -> proof_artifacts/) ==="
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done

echo
echo "=== examples ==="
for e in build/examples/*; do
  [ -f "$e" ] && [ -x "$e" ] && "$e"
done

// Unit tests: report comparison (the §4.5/§4.6 A/B workflow API).
#include <gtest/gtest.h>

#include "core/compare.hpp"
#include "support/error.hpp"

namespace proof {
namespace {

ProfileReport run(const std::string& model, int64_t batch) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  return Profiler(opt).run_zoo(model);
}

TEST(Compare, IdentityDeltaIsNeutral) {
  const ProfileReport r = run("resnet34", 8);
  const ReportDelta d = compare_reports(r, r);
  EXPECT_DOUBLE_EQ(d.speedup, 1.0);
  EXPECT_DOUBLE_EQ(d.throughput_ratio, 1.0);
  EXPECT_NEAR(d.flop_ratio, 1.0, 1e-9);
  EXPECT_NEAR(d.power_delta_w, 0.0, 1e-9);
  for (const auto& [cls, delta] : d.class_latency_delta_s) {
    EXPECT_NEAR(delta, 0.0, 1e-12) << op_class_name(cls);
  }
}

TEST(Compare, ShuffleNetCaseStudyDelta) {
  ReportDelta d =
      compare_reports(run("shufflenetv2_10", 2048), run("shufflenetv2_10_mod", 2048));
  // §4.5: more FLOP, less traffic, faster.
  EXPECT_GT(d.speedup, 1.3);
  EXPECT_GT(d.flop_ratio, 1.3);
  EXPECT_LT(d.bytes_ratio, 1.0);
  // The win comes from data movement disappearing.
  EXPECT_LT(d.class_latency_delta_s[OpClass::kDataMovement], 0.0);
}

TEST(Compare, SpeedupAndThroughputConsistent) {
  const ReportDelta d = compare_reports(run("resnet50", 32), run("resnet34", 32));
  // Same batch -> throughput ratio equals speedup.
  EXPECT_NEAR(d.throughput_ratio, d.speedup, 1e-9);
  EXPECT_GT(d.speedup, 1.0);  // ResNet-34 is lighter
}

TEST(Compare, DeltaTextMentionsKeyNumbers) {
  const ReportDelta d =
      compare_reports(run("shufflenetv2_10", 128), run("shufflenetv2_10_mod", 128));
  const std::string text = delta_text(d);
  EXPECT_NE(text.find("speedup:"), std::string::npos);
  EXPECT_NE(text.find("perf/W:"), std::string::npos);
  EXPECT_NE(text.find("data_movement"), std::string::npos);
}

TEST(Compare, RejectsEmptyReports) {
  const ProfileReport empty;
  EXPECT_THROW((void)compare_reports(empty, empty), Error);
}

}  // namespace
}  // namespace proof

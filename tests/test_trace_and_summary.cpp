// Unit tests: Chrome trace export and the model-design summary.
#include <gtest/gtest.h>

#include "core/chrome_trace.hpp"
#include "models/summary.hpp"
#include "models/zoo.hpp"

namespace proof {
namespace {

ProfileReport sample_report() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  return Profiler(opt).run_zoo("mobilenetv2_05");
}

TEST(ChromeTrace, WellFormedEventStream) {
  const ProfileReport r = sample_report();
  const std::string trace = report_to_chrome_trace(r);
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("backend layers"), std::string::npos);
  EXPECT_NE(trace.find("device kernels"), std::string::npos);
  // One X event per layer plus one per kernel plus 3 metadata events.
  size_t events = 0;
  size_t pos = 0;
  while ((pos = trace.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 8;
  }
  size_t kernels = 0;
  for (const LayerReport& layer : r.layers) {
    kernels += layer.kernels.size();
  }
  EXPECT_EQ(events, r.layers.size() + kernels);
}

TEST(ChromeTrace, EventsTileTheTimeline) {
  const ProfileReport r = sample_report();
  const std::string trace = report_to_chrome_trace(r);
  // Sum of layer durations (tid 1 events) equals total latency in us.
  double total_dur = 0.0;
  size_t pos = 0;
  while ((pos = trace.find("\"tid\":1,\"ts\":", pos)) != std::string::npos) {
    const size_t dur_pos = trace.find("\"dur\":", pos);
    total_dur += std::stod(trace.substr(dur_pos + 6));
    pos = dur_pos;
  }
  EXPECT_NEAR(total_dur, r.total_latency_s * 1e6, r.total_latency_s * 1e6 * 1e-6);
}

TEST(ChromeTrace, EscapesLayerNames) {
  ProfileReport r = sample_report();
  r.layers[1].backend_layer = "weird\"name\\with\nstuff";
  const std::string trace = report_to_chrome_trace(r);
  EXPECT_NE(trace.find("weird\\\"name\\\\with\\nstuff"), std::string::npos);
}

// Regression: the emitter's old private escaper handled \n and quotes but
// passed \t, \r and other control characters straight through, producing
// invalid JSON.  It now routes through json::escape like every serializer.
TEST(ChromeTrace, EscapesTabsCarriageReturnsAndControlChars) {
  ProfileReport r = sample_report();
  r.layers[0].backend_layer = "tab\tcr\rctrl\x1b!";
  const std::string trace = report_to_chrome_trace(r);
  EXPECT_NE(trace.find("tab\\tcr\\rctrl\\u001b!"), std::string::npos);
  for (const char c : {'\t', '\r', '\x1b'}) {
    EXPECT_EQ(trace.find(c), std::string::npos)
        << "raw control byte " << static_cast<int>(c) << " leaked";
  }
}

TEST(ModelSummary, PerNodeTableAndTotals) {
  const Graph g = models::build_model("resnet18");
  const std::string summary = models::model_summary(g);
  EXPECT_NE(summary.find("Conv_0"), std::string::npos);
  EXPECT_NE(summary.find("| op"), std::string::npos);
  // Totals line reflects the model stats (11.7M params, 3.6 GFLOP).
  EXPECT_NE(summary.find("11.685M params"), std::string::npos);
  EXPECT_NE(summary.find("3.636 GFLOP"), std::string::npos);
}

TEST(ModelSummary, MaxRowsTruncatesButTotalsStayComplete) {
  const Graph g = models::build_model("resnet18");
  const std::string full = models::model_summary(g);
  const std::string truncated = models::model_summary(g, 5);
  EXPECT_LT(truncated.size(), full.size());
  EXPECT_NE(truncated.find("more nodes"), std::string::npos);
  // Totals identical regardless of printed rows.
  const auto totals = [](const std::string& s) {
    return s.substr(s.rfind("total:"));
  };
  EXPECT_EQ(totals(full), totals(truncated));
}

}  // namespace
}  // namespace proof

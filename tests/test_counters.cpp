// Unit tests: simulated hardware-counter profiler, hardware-FLOP model and
// the NCU tensor-core counting quirk + correction (paper §4.2).
#include <gtest/gtest.h>

#include "hw/counters.hpp"
#include "hw/hardware_flops.hpp"
#include "models/builder.hpp"
#include "support/error.hpp"

namespace proof::hw {
namespace {

TEST(MmaShapes, VoltaIsTheOnlyCorrectCaseForNcu) {
  // NCU multiplies HMMA instruction counts by a fixed 512 — correct only for
  // Volta's HMMA.884 (8x8x4 * 2 = 512 FLOP).
  EXPECT_DOUBLE_EQ(mma_shape("volta", DType::kF16).flop_per_instruction(), 512.0);
  EXPECT_DOUBLE_EQ(mma_shape("ampere", DType::kF16).flop_per_instruction(), 4096.0);
  EXPECT_DOUBLE_EQ(mma_shape("ampere", DType::kI8).flop_per_instruction(), 8192.0);
  EXPECT_DOUBLE_EQ(mma_shape("ada", DType::kF16).flop_per_instruction(), 4096.0);
}

TEST(PaddedGemm, RoundsUpToTiles) {
  const BlockTile tile{64, 32, 32};
  // Aligned dims: exact.
  EXPECT_DOUBLE_EQ(padded_gemm_flops(128, 64, 64, tile), 2.0 * 128 * 64 * 64);
  // Misaligned dims round up.
  EXPECT_DOUBLE_EQ(padded_gemm_flops(100, 24, 24, tile), 2.0 * 128 * 32 * 32);
  EXPECT_GE(padded_gemm_flops(1, 1, 1, tile), 2.0 * 64 * 32 * 32);
}

TEST(HardwareFlops, AlignedConvHasNoPadding) {
  models::GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 64, 56, 56});
  const std::string y = b.conv(x, 64, 1, 1, 0, 1, false);
  const Graph g = b.finish({y});
  const Node& conv = g.nodes()[0];
  const OpContext ctx(g, conv);
  const double model = op_def_for(conv).flops(ctx);
  const double hw = hardware_flops(ctx, "ampere");
  // M = 3136 -> 3136 (multiple of 64? 3136 = 49*64 yes), N=64, K=64: exact.
  EXPECT_NEAR(hw, model, model * 1e-9);
}

TEST(HardwareFlops, MisalignedChannelsPad) {
  models::GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 24, 56, 56});
  const std::string y = b.conv(x, 24, 1, 1, 0, 1, false);  // 24 -> pad to 32
  const Graph g = b.finish({y});
  const Node& conv = g.nodes()[0];
  const OpContext ctx(g, conv);
  const double model = op_def_for(conv).flops(ctx);
  const double hw = hardware_flops(ctx, "ampere");
  EXPECT_GT(hw, 1.5 * model);  // (32/24)^2 = 1.78x
}

TEST(HardwareFlops, TranscendentalsCountBelowModel) {
  models::GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1024});
  const std::string y = b.act(x, "Erf");
  const Graph g = b.finish({y});
  const Node& erf = g.nodes()[0];
  const OpContext ctx(g, erf);
  EXPECT_LT(hardware_flops(ctx, "ampere"), op_def_for(erf).flops(ctx));
}

KernelWork tc_kernel(const std::string& name, double matrix, double scalar,
                     double bytes) {
  KernelWork k;
  k.name = name;
  k.cls = OpClass::kGemm;
  k.dtype = DType::kF16;
  k.hw_flops = matrix + scalar;
  k.matrix_flops = matrix;
  k.bytes = bytes;
  return k;
}

TEST(CounterProfiler, NcuBugRawVsCorrected) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const CounterProfiler prof(a100);
  const LatencyModel model{PlatformState(a100)};
  const auto report = prof.profile({tc_kernel("k0", 4096e6, 0.0, 1e6)}, model);
  ASSERT_EQ(report.samples.size(), 1u);
  const CounterSample& s = report.samples[0];
  EXPECT_DOUBLE_EQ(s.hmma_instructions, 1e6);
  EXPECT_DOUBLE_EQ(s.corrected_flops, 4096e6);
  // Raw NCU reading: 1e6 instructions x 512 — an integer-factor (8x)
  // undercount on Ampere, as §4.2 reports.
  EXPECT_DOUBLE_EQ(s.ncu_raw_flops, 512e6);
  EXPECT_DOUBLE_EQ(s.corrected_flops / s.ncu_raw_flops, 8.0);
}

TEST(CounterProfiler, VoltaRawEqualsCorrected) {
  const PlatformDesc& xavier = PlatformRegistry::instance().get("xavier_nx");
  PlatformDesc volta = xavier;
  volta.has_counter_profiler = true;  // pretend NCU exists on this Volta
  const CounterProfiler prof(volta);
  const LatencyModel model{PlatformState(volta)};
  const auto report = prof.profile({tc_kernel("k0", 512e6, 100.0, 1e6)}, model);
  EXPECT_DOUBLE_EQ(report.samples[0].ncu_raw_flops,
                   report.samples[0].corrected_flops);
}

TEST(CounterProfiler, ScalarFlopsPassThrough) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const CounterProfiler prof(a100);
  const LatencyModel model{PlatformState(a100)};
  const auto report = prof.profile({tc_kernel("k0", 0.0, 12345.0, 1e6)}, model);
  EXPECT_DOUBLE_EQ(report.samples[0].corrected_flops, 12345.0);
  EXPECT_DOUBLE_EQ(report.samples[0].hmma_instructions, 0.0);
}

TEST(CounterProfiler, MeasuredBytesCarryWorkspaceFactor) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const CounterProfiler prof(a100);
  const LatencyModel model{PlatformState(a100)};
  const auto report = prof.profile({tc_kernel("k0", 1e9, 0.0, 1e8)}, model);
  // GEMM factor 1.04 +/- small jitter.
  EXPECT_NEAR(report.samples[0].dram_bytes, 1.04e8, 0.02e8);
  // Deterministic across runs.
  const auto again = prof.profile({tc_kernel("k0", 1e9, 0.0, 1e8)}, model);
  EXPECT_DOUBLE_EQ(report.samples[0].dram_bytes, again.samples[0].dram_bytes);
}

TEST(CounterProfiler, ReplayOverheadScalesWithKernelCount) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const CounterProfiler prof(a100);
  const LatencyModel model{PlatformState(a100)};
  std::vector<KernelWork> one = {tc_kernel("k0", 1e9, 0.0, 1e6)};
  std::vector<KernelWork> ten;
  for (int i = 0; i < 10; ++i) {
    ten.push_back(tc_kernel("k" + std::to_string(i), 1e9, 0.0, 1e6));
  }
  const double t1 = prof.profile(one, model).profiling_time_s;
  const double t10 = prof.profile(ten, model).profiling_time_s;
  EXPECT_NEAR(t10, 10.0 * t1, 1e-9);
  EXPECT_GT(t1, 1.0);  // seconds per kernel, not microseconds
}

TEST(CounterProfiler, UnavailablePlatformThrows) {
  const PlatformDesc& rpi = PlatformRegistry::instance().get("rpi4b");
  const CounterProfiler prof(rpi);
  EXPECT_FALSE(prof.available());
  const LatencyModel model{PlatformState(rpi)};
  EXPECT_THROW((void)prof.profile({}, model), Error);
}

TEST(CounterProfiler, MatrixExceedingTotalRejected) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const CounterProfiler prof(a100);
  const LatencyModel model{PlatformState(a100)};
  KernelWork bad = tc_kernel("k0", 1e9, 0.0, 1e6);
  bad.hw_flops = 1e6;  // matrix_flops (1e9) > hw_flops
  EXPECT_THROW((void)prof.profile({bad}, model), Error);
}

TEST(TrafficFactors, NormalizationRereadsMost) {
  EXPECT_GT(measured_traffic_factor(OpClass::kNormalization),
            measured_traffic_factor(OpClass::kConv));
  EXPECT_GE(measured_traffic_factor(OpClass::kElementwise), 1.0);
}

}  // namespace
}  // namespace proof::hw

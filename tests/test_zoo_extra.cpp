// Tests: the extended model zoo (beyond Table 3) against published numbers.
#include <gtest/gtest.h>

#include "analysis/analyze_representation.hpp"
#include "core/profiler.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace proof::models {
namespace {

struct ExtraRow {
  std::string id;
  double params_m;
  double gflop;
};

class ExtraZooTest : public ::testing::TestWithParam<ExtraRow> {};

TEST_P(ExtraZooTest, ParamsAndGflopMatchLiterature) {
  const ExtraRow& row = GetParam();
  const AnalyzeRepresentation ar(build_model(row.id));
  EXPECT_LT(proof::testing::rel_diff(ar.param_count() / 1e6, row.params_m), 0.05)
      << row.id << ": " << ar.param_count() / 1e6 << "M";
  EXPECT_LT(proof::testing::rel_diff(ar.total_flops() / 1e9, row.gflop), 0.08)
      << row.id << ": " << ar.total_flops() / 1e9 << " GFLOP";
}

INSTANTIATE_TEST_SUITE_P(
    Literature, ExtraZooTest,
    ::testing::Values(ExtraRow{"resnet18", 11.7, 3.6},
                      ExtraRow{"resnet101", 44.5, 15.6},
                      ExtraRow{"vgg16", 138.4, 31.0},
                      // BERT-base @ seq 128: ~110M params, ~22.4 GFLOP.
                      ExtraRow{"bert_base", 109.5, 22.4}),
    [](const auto& info) { return info.param.id; });

TEST(ExtraZoo, AllEntriesProfileEndToEnd) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  for (const ModelSpec& spec : extended_model_zoo()) {
    const ProfileReport r = Profiler(opt).run_zoo(spec.id);
    EXPECT_GT(r.total_latency_s, 0.0) << spec.id;
    EXPECT_DOUBLE_EQ(r.mapping_coverage, 1.0) << spec.id;
  }
}

TEST(ExtraZoo, DepthOrderingHolds) {
  const auto gflop = [](const std::string& id) {
    return AnalyzeRepresentation(build_model(id)).total_flops();
  };
  EXPECT_LT(gflop("resnet18"), gflop("resnet34"));
  EXPECT_LT(gflop("resnet50"), gflop("resnet101"));
  // VGG-16's plain 3x3 stacks dwarf every ResNet.
  EXPECT_GT(gflop("vgg16"), gflop("resnet101"));
}

TEST(ExtraZoo, TableAndExtendedIdsDisjoint) {
  for (const ModelSpec& extra : extended_model_zoo()) {
    EXPECT_EQ(extra.table3_index, 0);
    for (const ModelSpec& table : model_zoo()) {
      EXPECT_NE(extra.id, table.id);
    }
  }
}

}  // namespace
}  // namespace proof::models

// Trace-validity suite: every Chrome trace the framework emits — all four
// golden zoo models, serial and multi-stream — must round-trip through the
// in-tree JSON parser, carry sane timestamps, and pair up its sync flow
// events.  Plus the escaping regressions this PR fixes: hostile node names
// (tabs, carriage returns, quotes, control characters) through the trace
// emitter, and hostile model names through the SVG renderer.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/chrome_trace.hpp"
#include "core/profiler.hpp"
#include "report/csv.hpp"
#include "report/svg_roofline.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace proof {
namespace {

ProfileReport profile_model(const std::string& model_id, int streams) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = model_id == "sd_unet" ? 2 : 4;
  opt.mode = MetricMode::kPredicted;
  opt.streams = streams;
  return Profiler(opt).run_zoo(model_id);
}

/// Structural checks shared by every emitted trace: parseable, non-negative
/// timestamps/durations, and every sync flow start ('s') paired with exactly
/// one finish ('f') at a later-or-equal timestamp.
void check_trace(const std::string& trace) {
  const json::Value doc = json::parse(trace);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  std::map<int64_t, double> flow_start;
  std::map<int64_t, double> flow_finish;
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const std::string phase = event.get_string("ph");
    if (phase == "X") {
      EXPECT_GE(event.get_double("ts", -1.0), 0.0);
      EXPECT_GE(event.get_double("dur", -1.0), 0.0);
    } else if (phase == "s" || phase == "f") {
      EXPECT_EQ(event.get_string("cat"), "proof_sync");
      auto& side = phase == "s" ? flow_start : flow_finish;
      const int64_t id = event.get_int("id", -1);
      EXPECT_GE(id, 0);
      EXPECT_TRUE(side.emplace(id, event.get_double("ts", -1.0)).second)
          << "duplicate flow id " << id;
    }
  }
  EXPECT_EQ(flow_start.size(), flow_finish.size());
  for (const auto& [id, start_ts] : flow_start) {
    const auto it = flow_finish.find(id);
    ASSERT_NE(it, flow_finish.end()) << "unpaired flow start id " << id;
    EXPECT_GE(it->second, start_ts) << "sync arrives before it departs";
  }
  for (const auto& [id, finish_ts] : flow_finish) {
    EXPECT_TRUE(flow_start.count(id)) << "unpaired flow finish id " << id;
  }
}

struct TraceCase {
  const char* model;
  int streams;
};

class TraceValidity : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceValidity, RoundTripsThroughJsonParser) {
  const auto& [model, streams] = GetParam();
  const ProfileReport report = profile_model(model, streams);
  check_trace(report_to_chrome_trace(report));
  if (streams != 1) {
    ASSERT_TRUE(report.timeline.has_value());
    // Multi-stream traces carry one flow pair per recorded sync edge.
    const std::string trace = report_to_chrome_trace(report);
    size_t starts = 0;
    size_t pos = 0;
    while ((pos = trace.find("\"ph\":\"s\"", pos)) != std::string::npos) {
      ++starts;
      pos += 8;
    }
    EXPECT_EQ(starts, report.timeline->syncs.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    GoldenZooSerialAndStreams, TraceValidity,
    ::testing::Values(TraceCase{"resnet50", 1}, TraceCase{"resnet50", 0},
                      TraceCase{"bert_base", 1}, TraceCase{"bert_base", 0},
                      TraceCase{"shufflenetv2_10", 1},
                      TraceCase{"shufflenetv2_10", 0},
                      TraceCase{"sd_unet", 1}, TraceCase{"sd_unet", 0}),
    [](const ::testing::TestParamInfo<TraceCase>& info) {
      return std::string(info.param.model) +
             (info.param.streams == 1 ? "_serial" : "_streams");
    });

// The bug this PR fixes: the trace emitter's private escaper dropped \t, \r
// and other control characters, so any model with hostile node names emitted
// unparseable JSON.  Everything now routes through json::escape.
TEST(TraceValidityHostile, HostileNamesStillParse) {
  for (const int streams : {1, 0}) {
    ProfileReport report = profile_model("mobilenetv2_05", streams);
    report.model_name = "model\twith\rhostile \"chars\" \x01\x1f\\end";
    ASSERT_GE(report.layers.size(), 3u);
    report.layers[0].backend_layer = "tab\there";
    report.layers[1].backend_layer = "cr\rlf\n quote\" back\\slash";
    report.layers[2].backend_layer =
        std::string("nul\x01") + "ctrl\x1f" + "bell\x07";
    if (!report.layers[0].kernels.empty()) {
      report.layers[0].kernels[0] = "kernel\twith\rctrl\x02";
    }
    if (!report.layers[0].model_nodes.empty()) {
      report.layers[0].model_nodes[0] = "node\"with\tstuff";
    }
    const std::string trace = report_to_chrome_trace(report);
    SCOPED_TRACE(streams == 1 ? "serial" : "multi-stream");
    check_trace(trace);
    // Escaped forms present, raw control bytes absent.
    EXPECT_NE(trace.find("tab\\there"), std::string::npos);
    EXPECT_NE(trace.find("cr\\rlf\\n quote\\\" back\\\\slash"),
              std::string::npos);
    EXPECT_NE(trace.find("\\u0001"), std::string::npos);
    for (const char c : {'\t', '\r', '\x01', '\x02', '\x07', '\x1f'}) {
      EXPECT_EQ(trace.find(c), std::string::npos)
          << "raw control byte " << static_cast<int>(c) << " leaked";
    }
  }
}

TEST(TraceValidityHostile, SaveReportsWriteFailureWithPath) {
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  try {
    save_chrome_trace("{\"traceEvents\":[]}", "/dev/full");
    FAIL() << "writing to /dev/full did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << "error message must name the path: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// SVG escaping (satellite: xml_escape in the roofline renderer).

/// Minimal stack-based XML well-formedness check — tags balance, entities
/// are known, no raw '<'/'&' inside text.
void check_xml(const std::string& xml) {
  std::vector<std::string> stack;
  size_t i = 0;
  while (i < xml.size()) {
    const char c = xml[i];
    if (c == '<') {
      const size_t end = xml.find('>', i);
      ASSERT_NE(end, std::string::npos) << "unterminated tag at byte " << i;
      std::string tag = xml.substr(i + 1, end - i - 1);
      ASSERT_FALSE(tag.empty());
      if (tag[0] == '/') {
        ASSERT_FALSE(stack.empty()) << "close without open: " << tag;
        EXPECT_EQ(stack.back(), tag.substr(1)) << "mismatched close";
        stack.pop_back();
      } else if (tag.back() != '/' && tag[0] != '?' && tag[0] != '!') {
        const size_t space = tag.find_first_of(" \t\n");
        stack.push_back(space == std::string::npos ? tag
                                                   : tag.substr(0, space));
      }
      i = end + 1;
    } else if (c == '&') {
      const size_t semi = xml.find(';', i);
      ASSERT_NE(semi, std::string::npos) << "raw '&' at byte " << i;
      const std::string entity = xml.substr(i + 1, semi - i - 1);
      EXPECT_TRUE(entity == "amp" || entity == "lt" || entity == "gt" ||
                  entity == "quot" || entity == "apos")
          << "unknown entity &" << entity << ";";
      i = semi + 1;
    } else {
      ASSERT_NE(c, '>') << "stray '>' outside tag at byte " << i;
      ++i;
    }
  }
  EXPECT_TRUE(stack.empty()) << "unclosed tag " << stack.back();
}

TEST(SvgEscaping, HostileTitleAndPointNamesStayWellFormed) {
  roofline::Ceilings ceilings;
  ceilings.peak_flops = 312e12;
  ceilings.peak_bw = 2039e9;
  ceilings.extra_bw_lines = {{"L2 <cache> & \"friends\"", 4000e9}};

  roofline::Point hostile;
  hostile.name = "layer <0> & 'co' \"quoted\"";
  hostile.flops = 1e9;
  hostile.bytes = 1e6;
  hostile.latency_s = 1e-4;
  hostile.latency_share = 0.5;
  roofline::Point critical = hostile;
  critical.name = "critical </text><script>";
  critical.criticality = 1.0;

  report::SvgOptions opt;
  opt.title = "model <evil> & \"hostile\" 'name'";
  opt.label_points = true;
  const std::string svg =
      report::render_points_svg(ceilings, {hostile, critical}, opt);
  check_xml(svg);
  // Escaped forms present, raw markup from the names absent.
  EXPECT_NE(svg.find("&lt;evil&gt; &amp; &quot;hostile&quot;"),
            std::string::npos);
  EXPECT_EQ(svg.find("<evil>"), std::string::npos);
  EXPECT_EQ(svg.find("<script>"), std::string::npos);
  // The critical point gets its marker ring.
  EXPECT_NE(svg.find("stroke='#c62828'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV escaping (satellite: RFC-4180 quoting in report::CsvWriter).

/// Minimal RFC-4180 parser: splits `csv` into rows of fields, honoring
/// quoted fields (embedded separators, line breaks, doubled quotes).  Rows
/// end at an unquoted '\n'.
std::vector<std::vector<std::string>> parse_csv(const std::string& csv) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < csv.size(); ++i) {
    const char c = csv[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(field);
      field.clear();
    } else if (c == '\n') {
      row.push_back(field);
      field.clear();
      rows.push_back(row);
      row.clear();
    } else {
      field += c;
    }
  }
  EXPECT_FALSE(quoted) << "CSV ended inside a quoted field";
  return rows;
}

// The bug this PR fixes: fields containing a bare '\r' (old-Mac line ends,
// hostile layer names) were emitted unquoted, breaking row framing for
// RFC-4180 consumers.  Every hostile field must now round-trip.
TEST(CsvEscaping, HostileFieldsRoundTrip) {
  const std::vector<std::string> hostile = {
      "plain",
      "comma,inside",
      "quote\"inside",
      "newline\ninside",
      "carriage\rreturn",       // the regression
      "crlf\r\npair",
      "all,of\"them\r\n mixed",
      "\r",
  };
  report::CsvWriter csv({"name", "value"});
  for (size_t i = 0; i < hostile.size(); ++i) {
    csv.add_row({hostile[i], std::to_string(i)});
  }

  const std::string text = csv.to_string();
  const std::vector<std::vector<std::string>> rows = parse_csv(text);
  ASSERT_EQ(rows.size(), hostile.size() + 1);  // header + data
  for (size_t i = 0; i < hostile.size(); ++i) {
    ASSERT_EQ(rows[i + 1].size(), 2u) << "row " << i << " lost framing";
    EXPECT_EQ(rows[i + 1][0], hostile[i]) << "row " << i;
    EXPECT_EQ(rows[i + 1][1], std::to_string(i));
  }

  // Any field carrying a bare '\r' must sit inside quotes: scanning the raw
  // text line-wise (the naive consumer) must never see a '\r' outside them.
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '"') {
      quoted = !quoted;
    } else if (text[i] == '\r') {
      EXPECT_TRUE(quoted) << "bare \\r outside quotes at byte " << i;
    }
  }
}

TEST(CsvEscaping, FieldsWithoutSpecialsStayUnquoted) {
  report::CsvWriter csv({"a", "b"});
  csv.add_row({"x", "1.5"});
  EXPECT_EQ(csv.to_string(), "a,b\nx,1.5\n");
}

TEST(CsvEscaping, SaveReportsWriteFailureWithPath) {
  if (!std::ifstream("/dev/full").good()) {
    GTEST_SKIP() << "/dev/full not available";
  }
  report::CsvWriter csv({"col"});
  // Enough rows that the stream actually attempts the flush to the device.
  for (int i = 0; i < 4096; ++i) {
    csv.add_row({"row_" + std::to_string(i)});
  }
  try {
    csv.save("/dev/full");
    FAIL() << "writing to /dev/full did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << "error message must name the path: " << e.what();
  }
}

TEST(SvgEscaping, ControlCharactersAreDropped) {
  roofline::Ceilings ceilings;
  ceilings.peak_flops = 1e12;
  ceilings.peak_bw = 1e11;
  roofline::Point p;
  p.name = "ctrl\x01\x02name";
  p.flops = 1e9;
  p.bytes = 1e6;
  p.latency_s = 1e-4;
  report::SvgOptions opt;
  opt.title = "bad\x1ftitle";
  opt.label_points = true;
  const std::string svg = report::render_points_svg(ceilings, {p}, opt);
  check_xml(svg);
  EXPECT_NE(svg.find("ctrlname"), std::string::npos);
  EXPECT_NE(svg.find("badtitle"), std::string::npos);
  for (const char c : {'\x01', '\x02', '\x1f'}) {
    EXPECT_EQ(svg.find(c), std::string::npos);
  }
}

}  // namespace
}  // namespace proof

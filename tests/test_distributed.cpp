// Unit tests: distributed-inference estimation (pipeline + tensor parallel),
// the paper's §5 future-work extension.
#include <gtest/gtest.h>

#include "analysis/memory_footprint.hpp"
#include "distributed/parallel.hpp"
#include "analysis/shape_inference.hpp"
#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"

namespace proof::distributed {
namespace {

ProfileOptions a100_opts(int64_t batch = 32) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

TEST(Pipeline, SingleStageMatchesSingleDevice) {
  const Graph model = models::build_model("resnet50");
  const PipelineReport r =
      profile_pipeline(model, a100_opts(), 1, nvlink4(), 8);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(r.stages[0].send_bytes, 0.0);
  EXPECT_DOUBLE_EQ(r.bubble_fraction, 0.0);
  EXPECT_NEAR(r.speedup_vs_single, 1.0, 1e-6);
}

TEST(Pipeline, StagesPartitionAllLayers) {
  const Graph model = models::build_model("resnet50");
  const PipelineReport r =
      profile_pipeline(model, a100_opts(), 4, nvlink4(), 8);
  ASSERT_EQ(r.stages.size(), 4u);
  // Contiguous, complete coverage.
  EXPECT_EQ(r.stages.front().first_layer, 0u);
  for (size_t s = 1; s < r.stages.size(); ++s) {
    EXPECT_EQ(r.stages[s].first_layer, r.stages[s - 1].last_layer + 1);
  }
  // Internal cuts carry activations; the final stage sends nothing.
  for (size_t s = 0; s + 1 < r.stages.size(); ++s) {
    EXPECT_GT(r.stages[s].send_bytes, 0.0);
  }
  EXPECT_DOUBLE_EQ(r.stages.back().send_bytes, 0.0);
}

TEST(Pipeline, ThroughputImprovesWithStagesOnFastLink) {
  const Graph model = models::build_model("resnet50");
  const PipelineReport p1 = profile_pipeline(model, a100_opts(), 1, nvlink4(), 16);
  const PipelineReport p4 = profile_pipeline(model, a100_opts(), 4, nvlink4(), 16);
  EXPECT_GT(p4.steady_throughput_per_s, 1.8 * p1.steady_throughput_per_s);
  EXPECT_LE(p4.speedup_vs_single, 4.05);
}

TEST(Pipeline, SlowLinkHurts) {
  const Graph model = models::build_model("resnet50");
  const PipelineReport fast = profile_pipeline(model, a100_opts(), 4, nvlink4(), 16);
  const PipelineReport slow =
      profile_pipeline(model, a100_opts(), 4, ethernet_100g(), 16);
  EXPECT_LT(slow.steady_throughput_per_s, fast.steady_throughput_per_s);
  EXPECT_GT(slow.single_batch_latency_s, fast.single_batch_latency_s);
}

TEST(Pipeline, MoreMicrobatchesShrinkBubble) {
  const Graph model = models::build_model("resnet34");
  const PipelineReport m2 = profile_pipeline(model, a100_opts(), 4, nvlink4(), 2);
  const PipelineReport m32 = profile_pipeline(model, a100_opts(), 4, nvlink4(), 32);
  EXPECT_GT(m2.bubble_fraction, m32.bubble_fraction);
  EXPECT_LT(m2.steady_throughput_per_s, m32.steady_throughput_per_s);
}

TEST(Pipeline, RejectsBadArgs) {
  const Graph model = models::build_model("mobilenetv2_05");
  EXPECT_THROW((void)profile_pipeline(model, a100_opts(), 0, nvlink4()), Error);
  EXPECT_THROW((void)profile_pipeline(model, a100_opts(), 2, nvlink4(), 0), Error);
}

TEST(TensorParallel, OneWayIsIdentity) {
  const Graph model = models::build_model("vit_tiny");
  const TensorParallelReport r =
      profile_tensor_parallel(model, a100_opts(), 1, nvlink4());
  EXPECT_NEAR(r.speedup_vs_single, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.allreduce_s, 0.0);
  EXPECT_EQ(r.sharded_layers, 0u);
}

TEST(TensorParallel, ShardsMatrixLayersWithCommCost) {
  const Graph model = models::build_model("vit_base");
  const TensorParallelReport r =
      profile_tensor_parallel(model, a100_opts(), 4, nvlink4());
  EXPECT_GT(r.sharded_layers, 10u);
  EXPECT_GT(r.allreduce_s, 0.0);
  EXPECT_GT(r.speedup_vs_single, 1.5);
  EXPECT_LT(r.speedup_vs_single, 4.0);  // allreduce prevents ideal scaling
}

TEST(TensorParallel, SlowLinkErasesTheWin) {
  const Graph model = models::build_model("vit_base");
  const TensorParallelReport fast =
      profile_tensor_parallel(model, a100_opts(), 4, nvlink4());
  const TensorParallelReport slow =
      profile_tensor_parallel(model, a100_opts(), 4, ethernet_100g());
  EXPECT_LT(slow.speedup_vs_single, fast.speedup_vs_single);
}

TEST(TensorParallel, TextRendering) {
  const Graph model = models::build_model("vit_tiny");
  const auto r = profile_tensor_parallel(model, a100_opts(), 2, nvlink4());
  const std::string text = tensor_parallel_text(r);
  EXPECT_NE(text.find("2-way"), std::string::npos);
  EXPECT_NE(text.find("allreduce"), std::string::npos);
  const auto p = profile_pipeline(model, a100_opts(), 2, nvlink4());
  EXPECT_NE(pipeline_text(p).find("bubble"), std::string::npos);
}

TEST(MemoryFootprint, WeightsAndPeakActivations) {
  const Graph g = models::build_model("resnet50");
  const MemoryFootprint fp = memory_footprint(g);
  // 25.5 M fp32 params = ~102 MB.
  EXPECT_NEAR(fp.weight_bytes / 1e6, 102.0, 5.0);
  EXPECT_GT(fp.peak_activation_bytes, 0);
  // Peak activations far below total traffic — liveness frees tensors.
  EXPECT_LT(fp.peak_activation_bytes, 100e6);
  EXPECT_FALSE(fp.peak_at_node.empty());
}

TEST(MemoryFootprint, ScalesWithBatch) {
  Graph g1 = models::build_model("mobilenetv2_10");
  Graph g8 = models::build_model("mobilenetv2_10");
  set_batch_size(g8, 8);
  const MemoryFootprint f1 = memory_footprint(g1);
  const MemoryFootprint f8 = memory_footprint(g8);
  EXPECT_EQ(f1.weight_bytes, f8.weight_bytes);
  EXPECT_NEAR(static_cast<double>(f8.peak_activation_bytes),
              8.0 * static_cast<double>(f1.peak_activation_bytes),
              0.05 * 8.0 * static_cast<double>(f1.peak_activation_bytes));
}

TEST(MemoryFootprint, ViewsDoNotDoubleCount) {
  models::GraphBuilder b("views");
  std::string x = b.input("x", Shape{1, 1024});
  // A chain of reshapes must not accumulate storage.
  for (int i = 0; i < 10; ++i) {
    x = b.reshape(x, {1, 1024});
  }
  x = b.act(x, "Relu");
  const Graph g = b.finish({x});
  const MemoryFootprint fp = memory_footprint(g);
  // Input (4 KB) + relu output (4 KB), not 12 tensors.
  EXPECT_LE(fp.peak_activation_bytes, 2 * 4096 + 64);
}

}  // namespace
}  // namespace proof::distributed

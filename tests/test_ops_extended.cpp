// Unit tests: the extended operator set (beyond the Table-3 models).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reference_executor.hpp"
#include "models/builder.hpp"
#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

double flops_of(const Graph& g, const std::string& out) {
  const NodeId id = g.producer(out);
  const Node& node = g.node(id);
  return op_def_for(node).flops(OpContext(g, node));
}

TEST(ExtendedOps, InstanceNormShapeAndClass) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 8, 16, 16});
  const std::string y =
      b.node("InstanceNormalization",
             {x, b.param("s", Shape{8}), b.param("b", Shape{8})});
  EXPECT_EQ(b.shape_of(y), b.shape_of(x));
}

TEST(ExtendedOps, PReluPreservesShape) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 8, 4, 4});
  const std::string y = b.node("PRelu", {x, b.param("slope", Shape{8, 1, 1})});
  EXPECT_EQ(b.shape_of(y), b.shape_of(x));
}

TEST(ExtendedOps, DepthToSpaceAndBack) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 16, 8, 8});
  AttrMap d2s;
  d2s.set("blocksize", static_cast<int64_t>(2));
  const std::string up = b.node("DepthToSpace", {x}, std::move(d2s));
  EXPECT_EQ(b.shape_of(up), (Shape{1, 4, 16, 16}));
  AttrMap s2d;
  s2d.set("blocksize", static_cast<int64_t>(2));
  const std::string back = b.node("SpaceToDepth", {up}, std::move(s2d));
  EXPECT_EQ(b.shape_of(back), b.shape_of(x));
  // Pure data movement: zero FLOP.
  const Graph g = b.finish({back});
  EXPECT_DOUBLE_EQ(flops_of(g, up), 0.0);
}

TEST(ExtendedOps, DepthToSpaceRejectsBadChannels) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 6, 8, 8});
  AttrMap attrs;
  attrs.set("blocksize", static_cast<int64_t>(2));
  EXPECT_THROW((void)b.node("DepthToSpace", {x}, std::move(attrs)), Error);
}

TEST(ExtendedOps, GlobalMaxPoolShape) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 8, 7, 7});
  EXPECT_EQ(b.shape_of(b.node("GlobalMaxPool", {x})), (Shape{2, 8, 1, 1}));
}

TEST(ExtendedOps, ReduceMaxAndArgMax) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 10, 5});
  AttrMap rm;
  rm.set("axes", std::vector<int64_t>{1});
  rm.set("keepdims", static_cast<int64_t>(0));
  EXPECT_EQ(b.shape_of(b.node("ReduceMax", {x}, std::move(rm))), (Shape{2, 5}));
  AttrMap am;
  am.set("axis", static_cast<int64_t>(-1));
  am.set("keepdims", static_cast<int64_t>(0));
  const std::string idx = b.node("ArgMax", {x}, std::move(am));
  EXPECT_EQ(b.shape_of(idx), (Shape{2, 10}));
}

TEST(ExtendedOps, EinsumMatmulEquivalence) {
  // "ij,jk->ik" must match MatMul's FLOP and shape exactly.
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{32, 64});
  const std::string c = b.input("c", Shape{64, 16});
  AttrMap attrs;
  attrs.set("equation", std::string("ij,jk->ik"));
  const std::string e = b.node("Einsum", {a, c}, std::move(attrs));
  const std::string m = b.matmul(a, c);
  const Graph g = b.finish({e, m});
  EXPECT_EQ(g.tensor(e).shape, g.tensor(m).shape);
  EXPECT_DOUBLE_EQ(flops_of(g, e), flops_of(g, m));
}

TEST(ExtendedOps, EinsumAttentionPattern) {
  // "bhid,bhjd->bhij": the QK^T contraction as transformers export it.
  GraphBuilder b("g");
  const std::string q = b.input("q", Shape{2, 4, 16, 8});
  const std::string k = b.input("k", Shape{2, 4, 16, 8});
  AttrMap attrs;
  attrs.set("equation", std::string("bhid,bhjd->bhij"));
  const std::string e = b.node("Einsum", {q, k}, std::move(attrs));
  EXPECT_EQ(b.shape_of(e), (Shape{2, 4, 16, 16}));
  const Graph g = b.finish({e});
  EXPECT_DOUBLE_EQ(flops_of(g, e), 2.0 * 2 * 4 * 16 * 16 * 8);
}

TEST(ExtendedOps, EinsumRejectsMalformedEquations) {
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{4, 4});
  const std::string c = b.input("c", Shape{4, 4});
  AttrMap no_arrow;
  no_arrow.set("equation", std::string("ij,jk"));
  EXPECT_THROW((void)b.node("Einsum", {a, c}, std::move(no_arrow)), Error);
  AttrMap bad_label;
  bad_label.set("equation", std::string("ij,jk->iz"));
  EXPECT_THROW((void)b.node("Einsum", {a, c}, std::move(bad_label)), Error);
  AttrMap mismatch;
  mismatch.set("equation", std::string("ij,kl->il"));
  const std::string d = b.input("d", Shape{5, 4});
  (void)d;
  AttrMap rank_mismatch;
  rank_mismatch.set("equation", std::string("ijq,jk->ik"));
  EXPECT_THROW((void)b.node("Einsum", {a, c}, std::move(rank_mismatch)), Error);
}

TEST(ExtendedOps, ActivationReferenceValues) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{3});
  const std::string elu = b.act(x, "Elu");
  const std::string softplus = b.act(x, "Softplus");
  const std::string mish = b.act(x, "Mish");
  const std::string abs = b.act(x, "Abs");
  const Graph g = b.finish({elu, softplus, mish, abs});
  const ReferenceExecutor exec(g);
  auto values = exec.run({{"x", Tensor(Shape{3}, {-1.0f, 0.0f, 2.0f})}});
  EXPECT_NEAR(values.at(elu).at(0), std::exp(-1.0) - 1.0, 1e-6);
  EXPECT_FLOAT_EQ(values.at(elu).at(2), 2.0f);
  EXPECT_NEAR(values.at(softplus).at(1), std::log(2.0), 1e-6);
  EXPECT_NEAR(values.at(mish).at(2), 2.0 * std::tanh(std::log1p(std::exp(2.0))),
              1e-5);
  EXPECT_FLOAT_EQ(values.at(abs).at(0), 1.0f);
}

TEST(ExtendedOps, LogSoftmaxShape) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4, 10});
  EXPECT_EQ(b.shape_of(b.node("LogSoftmax", {x})), (Shape{4, 10}));
}

TEST(ExtendedOps, RegisteredInRegistry) {
  for (const char* op : {"InstanceNormalization", "PRelu", "DepthToSpace",
                         "SpaceToDepth", "GlobalMaxPool", "ReduceMax", "ReduceMin",
                         "ArgMax", "LogSoftmax", "Einsum", "Elu", "Softplus",
                         "Mish", "Abs", "Floor", "Ceil"}) {
    EXPECT_TRUE(OpRegistry::instance().contains(op)) << op;
  }
}

}  // namespace
}  // namespace proof

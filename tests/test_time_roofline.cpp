// Time-based roofline math (roofline/time_roofline.hpp): per-point time
// conversion, bound classification, aggregate fractions, and consistency
// with the classic analysis it is derived from.
#include <gtest/gtest.h>

#include <string>

#include "core/profiler.hpp"
#include "roofline/roofline.hpp"
#include "roofline/time_roofline.hpp"
#include "test_util.hpp"

namespace proof::roofline {
namespace {

Ceilings test_ceilings() {
  Ceilings c;
  c.peak_flops = 100e12;  // 100 TFLOP/s
  c.peak_bw = 1e12;       // 1 TB/s -> ridge at AI 100
  return c;
}

Point make_point(const std::string& name, double flops, double bytes,
                 double latency_s) {
  Point p;
  p.name = name;
  p.flops = flops;
  p.bytes = bytes;
  p.latency_s = latency_s;
  return p;
}

TEST(TimeRoofline, PointConversionAgainstBothRoofs) {
  const Ceilings c = test_ceilings();
  // AI = 10, left of the ridge: memory roof dominates.
  const TimePoint mem = time_point(make_point("mem", 1e12, 1e11, 2e-1), c);
  EXPECT_CLOSE(mem.compute_time_s, 1e12 / 100e12, 1e-12);
  EXPECT_CLOSE(mem.memory_time_s, 1e11 / 1e12, 1e-12);
  EXPECT_CLOSE(mem.bound_time_s, mem.memory_time_s, 1e-12);
  EXPECT_TRUE(mem.bandwidth_bound);
  EXPECT_CLOSE(mem.arithmetic_intensity(), 10.0, 1e-12);
  EXPECT_CLOSE(mem.bound_efficiency(), 0.1 / 0.2, 1e-12);

  // AI = 1000, right of the ridge: compute roof dominates.
  const TimePoint comp = time_point(make_point("comp", 1e14, 1e11, 2e0), c);
  EXPECT_CLOSE(comp.bound_time_s, comp.compute_time_s, 1e-12);
  EXPECT_FALSE(comp.bandwidth_bound);

  // Exactly at the ridge the tie breaks toward compute (t_mem > t_comp is
  // strict), and the bound times agree.
  const TimePoint ridge = time_point(make_point("ridge", 1e14, 1e12, 2e0), c);
  EXPECT_CLOSE(ridge.compute_time_s, ridge.memory_time_s, 1e-12);
  EXPECT_FALSE(ridge.bandwidth_bound);
}

TEST(TimeRoofline, AnalysisAggregatesSharesAndFractions) {
  Analysis analysis;
  analysis.ceilings = test_ceilings();
  // One bandwidth-bound layer (t_mem = 100 us) and one compute-bound layer
  // (t_comp = 300 us), with simulated latencies 150/450 us.
  analysis.layers = {make_point("mem", 1e9, 1e8, 150e-6),
                     make_point("comp", 3e10, 1e7, 450e-6)};
  analysis.end_to_end = make_point("total", analysis.layers[0].flops +
                                                analysis.layers[1].flops,
                                   analysis.layers[0].bytes +
                                       analysis.layers[1].bytes,
                                   600e-6);

  const TimeAnalysis t = time_analysis(analysis);
  ASSERT_EQ(t.layers.size(), 2u);
  EXPECT_CLOSE(t.layers[0].memory_time_s, 100e-6, 1e-9);
  EXPECT_CLOSE(t.layers[1].compute_time_s, 300e-6, 1e-9);
  EXPECT_TRUE(t.layers[0].bandwidth_bound);
  EXPECT_FALSE(t.layers[1].bandwidth_bound);

  // Shares normalize over the layer sums.
  EXPECT_CLOSE(t.layers[0].bound_share, 100.0 / 400.0, 1e-9);
  EXPECT_CLOSE(t.layers[1].bound_share, 300.0 / 400.0, 1e-9);
  EXPECT_CLOSE(t.layers[0].latency_share, 150.0 / 600.0, 1e-9);

  // Fractions weight the bandwidth-bound layer by bound time vs latency.
  EXPECT_CLOSE(t.bandwidth_bound_time_fraction(), 0.25, 1e-9);
  EXPECT_CLOSE(t.bandwidth_bound_latency_fraction(), 0.25, 1e-9);
  EXPECT_FALSE(t.bandwidth_bound());

  // The total row sums the per-layer quantities.
  EXPECT_CLOSE(t.total.flops, analysis.end_to_end.flops, 1e-12);
  EXPECT_CLOSE(t.total.bound_time_s, 400e-6, 1e-9);
  EXPECT_CLOSE(t.total.latency_s, 600e-6, 1e-9);
}

TEST(TimeRoofline, EmptyAndZeroInputsAreSafe) {
  Analysis analysis;
  analysis.ceilings = test_ceilings();
  const TimeAnalysis t = time_analysis(analysis);
  EXPECT_TRUE(t.layers.empty());
  EXPECT_EQ(t.bandwidth_bound_time_fraction(), 0.0);
  EXPECT_EQ(t.bandwidth_bound_latency_fraction(), 0.0);
  EXPECT_FALSE(t.bandwidth_bound());

  const TimePoint zero = time_point(Point{}, Ceilings{});
  EXPECT_EQ(zero.bound_time_s, 0.0);
  EXPECT_EQ(zero.bound_efficiency(), 0.0);
}

TEST(TimeRoofline, MatchesClassicAnalysisOnRealReport) {
  // Derived view consistency: converting a real profiler roofline must keep
  // FLOPs/bytes/latency identical layer-by-layer and classify each layer
  // exactly by t_mem > t_comp.
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  const ProfileReport report = Profiler(opt).run_zoo("shufflenetv2_10");
  const TimeAnalysis t = time_analysis(report.roofline);

  ASSERT_EQ(t.layers.size(), report.roofline.layers.size());
  double bound_sum = 0.0;
  for (size_t i = 0; i < t.layers.size(); ++i) {
    const Point& classic = report.roofline.layers[i];
    const TimePoint& timed = t.layers[i];
    EXPECT_EQ(timed.name, classic.name);
    EXPECT_CLOSE(timed.flops, classic.flops, 1e-12);
    EXPECT_CLOSE(timed.bytes, classic.bytes, 1e-12);
    EXPECT_CLOSE(timed.latency_s, classic.latency_s, 1e-12);
    EXPECT_EQ(timed.bandwidth_bound, timed.memory_time_s > timed.compute_time_s);
    // The roofline is a *lower* bound on simulated time.
    EXPECT_LE(timed.bound_time_s, timed.latency_s * (1.0 + 1e-9));
    bound_sum += timed.bound_time_s;
  }
  EXPECT_CLOSE(t.total.bound_time_s, bound_sum, 1e-9);
}

}  // namespace
}  // namespace proof::roofline

// Unit + property tests: operator shape inference.
#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

TEST(OpShapes, ConvBasic) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{2, 3, 224, 224});
  const std::string y = b.conv(x, 64, 7, 2);
  EXPECT_EQ(b.shape_of(y), (Shape{2, 64, 112, 112}));
}

struct ConvCase {
  int64_t h, k, s, p, d;
  int64_t expected;
};

class ConvShapeTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeTest, SpatialFormula) {
  const auto& c = GetParam();
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 4, c.h, c.h});
  const std::string y = b.conv(x, 8, c.k, c.s, c.p, 1, true, c.d);
  EXPECT_EQ(b.dim(y, 2), c.expected) << "h=" << c.h << " k=" << c.k;
  EXPECT_EQ(b.dim(y, 3), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvShapeTest,
    ::testing::Values(ConvCase{224, 3, 1, 1, 1, 224}, ConvCase{224, 3, 2, 1, 1, 112},
                      ConvCase{224, 7, 2, 3, 1, 112}, ConvCase{56, 1, 1, 0, 1, 56},
                      ConvCase{56, 1, 2, 0, 1, 28}, ConvCase{28, 5, 1, 2, 1, 28},
                      ConvCase{32, 3, 1, 2, 2, 32}, ConvCase{14, 3, 2, 1, 1, 7}));

TEST(OpShapes, GroupedConvChecksChannels) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 8, 16, 16});
  const std::string y = b.conv(x, 8, 3, 1, -1, /*groups=*/8);
  EXPECT_EQ(b.shape_of(y), (Shape{1, 8, 16, 16}));
  EXPECT_THROW((void)b.conv(x, 8, 3, 1, -1, /*groups=*/3), Error);
}

TEST(OpShapes, PoolingShapes) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 64, 112, 112});
  EXPECT_EQ(b.shape_of(b.maxpool(x, 3, 2)), (Shape{1, 64, 56, 56}));
  EXPECT_EQ(b.shape_of(b.avgpool(x, 2, 2, 0)), (Shape{1, 64, 56, 56}));
  EXPECT_EQ(b.shape_of(b.global_avgpool(x)), (Shape{1, 64, 1, 1}));
}

TEST(OpShapes, GemmWithTranspose) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{4, 128});
  EXPECT_EQ(b.shape_of(b.linear(x, 10)), (Shape{4, 10}));
}

TEST(OpShapes, MatMulBatchBroadcast) {
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{2, 8, 16, 32});
  const std::string c = b.input("c", Shape{32, 64});
  EXPECT_EQ(b.shape_of(b.matmul(a, c)), (Shape{2, 8, 16, 64}));
}

TEST(OpShapes, MatMulInnerDimMismatchThrows) {
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{4, 8});
  const std::string c = b.input("c", Shape{9, 4});
  EXPECT_THROW((void)b.matmul(a, c), Error);
}

TEST(OpShapes, ReshapeWithInferredAndCopiedDims) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{2, 12, 5});
  EXPECT_EQ(b.shape_of(b.reshape(x, {0, 3, 4, 5})), (Shape{2, 3, 4, 5}));
  EXPECT_EQ(b.shape_of(b.reshape(x, {-1, 10})), (Shape{12, 10}));
  EXPECT_THROW((void)b.reshape(x, {7, -1}), Error);
}

TEST(OpShapes, TransposeAndFlatten) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{2, 3, 4, 5});
  EXPECT_EQ(b.shape_of(b.transpose(x, {0, 2, 1, 3})), (Shape{2, 4, 3, 5}));
  EXPECT_EQ(b.shape_of(b.flatten(x)), (Shape{2, 60}));
}

TEST(OpShapes, ConcatAndSplit) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 4, 8});
  const std::string y = b.input("y", Shape{1, 6, 8});
  EXPECT_EQ(b.shape_of(b.concat({x, y}, 1)), (Shape{1, 10, 8}));
  const auto halves = b.split(x, 1, 2);
  ASSERT_EQ(halves.size(), 2u);
  EXPECT_EQ(b.shape_of(halves[0]), (Shape{1, 2, 8}));
  EXPECT_EQ(b.shape_of(halves[1]), (Shape{1, 2, 8}));
}

TEST(OpShapes, SliceClampingAndSteps) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 10, 10});
  EXPECT_EQ(b.shape_of(b.slice(x, {1}, {2}, {100})), (Shape{1, 8, 10}));
  EXPECT_EQ(b.shape_of(b.slice(x, {1, 2}, {0, 0}, {10, 10}, {2, 2})),
            (Shape{1, 5, 5}));
  EXPECT_EQ(b.shape_of(b.slice(x, {1}, {-3}, {10})), (Shape{1, 3, 10}));
}

TEST(OpShapes, GatherEmbedding) {
  GraphBuilder b("g");
  const std::string ids = b.input("ids", Shape{2, 16}, DType::kI64);
  const std::string emb = b.embedding(ids, 1000, 64);
  EXPECT_EQ(b.shape_of(emb), (Shape{2, 16, 64}));
}

TEST(OpShapes, ReduceMeanKeepdims) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{2, 196, 768});
  EXPECT_EQ(b.shape_of(b.reduce_mean(x, {1}, true)), (Shape{2, 1, 768}));
  EXPECT_EQ(b.shape_of(b.reduce_mean(x, {1}, false)), (Shape{2, 768}));
}

TEST(OpShapes, NormalizationPreservesShape) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{2, 16, 8, 8});
  EXPECT_EQ(b.shape_of(b.batchnorm(x)), b.shape_of(x));
  EXPECT_EQ(b.shape_of(b.groupnorm(x, 4)), b.shape_of(x));
  const std::string t = b.input("t", Shape{2, 16, 32});
  EXPECT_EQ(b.shape_of(b.layernorm(t)), b.shape_of(t));
  EXPECT_EQ(b.shape_of(b.softmax(t)), b.shape_of(t));
}

TEST(OpShapes, ElementwiseBroadcastOutput) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 16, 32});
  const std::string y = b.input("y", Shape{32});
  EXPECT_EQ(b.shape_of(b.add(x, y)), (Shape{2, 16, 32}));
}

TEST(OpShapes, PadAndResize) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 3, 8, 8});
  AttrMap pad_attrs;
  pad_attrs.set("pads", std::vector<int64_t>{0, 0, 1, 1, 0, 0, 1, 1});
  EXPECT_EQ(b.shape_of(b.node("Pad", {x}, std::move(pad_attrs))),
            (Shape{1, 3, 10, 10}));
  AttrMap rs;
  rs.set("scales", std::vector<double>{1.0, 1.0, 2.0, 2.0});
  rs.set("mode", std::string("nearest"));
  EXPECT_EQ(b.shape_of(b.node("Resize", {x}, std::move(rs))), (Shape{1, 3, 16, 16}));
}

TEST(OpShapes, CastChangesDtype) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{4});
  AttrMap attrs;
  attrs.set("to", std::string("fp16"));
  const std::string y = b.node("Cast", {x}, std::move(attrs));
  // dtype change visible through the graph tensor table
  GraphBuilder* pb = &b;
  (void)pb;
  SUCCEED() << y;
}

TEST(OpShapes, UnknownOperatorThrows) {
  Node n;
  n.name = "x";
  n.op_type = "TotallyUnknownOp";
  EXPECT_THROW((void)op_def_for(n), ModelError);
}

TEST(OpShapes, RegistryListsCoreOps) {
  const auto types = OpRegistry::instance().registered_types();
  EXPECT_GE(types.size(), 40u);
  for (const char* required :
       {"Conv", "MatMul", "Gemm", "Softmax", "Transpose", "Reshape",
        "LayerNormalization", "GlobalAveragePool", "Concat", "Split"}) {
    EXPECT_TRUE(OpRegistry::instance().contains(required)) << required;
  }
}

}  // namespace
}  // namespace proof

// The production optimizer end to end (ISSUE 8): bottleneck classifier,
// classification-keyed variant generation, and the guarded loop rediscovering
// the paper's two case studies:
//   * §4.5 — ShuffleNetV2 x1.0 on the A100: classified bandwidth-bound with
//     a dominant reorder share; the channel-shuffle-removal redesign
//     (`shufflenetv2_10_mod`) is proposed, measured, and accepted;
//   * §4.6 — EfficientNetV2-T on the Orin NX under a 15 W budget: the
//     nominal-clock baseline is infeasible; the clock axis explores the DVFS
//     grid and the guard lands on GPU 612 / EMC 2133 (Table 7's "ours") with
//     < 5% performance loss versus the unconstrained memory clock.
// Plus the determinism contract: the optimization report is byte-identical
// at --jobs 1 and --jobs 4.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/prep_cache.hpp"
#include "core/report_json.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "opt/optimizer.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"

namespace proof::opt {
namespace {

ProfileOptions base_options(const std::string& platform, int64_t batch) {
  ProfileOptions opt;
  opt.platform_id = platform;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  const auto& desc = hw::PlatformRegistry::instance().get(platform);
  opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
  return opt;
}

BottleneckReport classify_model(const std::string& model_id,
                                const ProfileOptions& opt) {
  const ProfileReport report =
      Profiler(opt).run(models::build_model(model_id));
  return classify(report,
                  hw::PlatformRegistry::instance().get(opt.platform_id));
}

// --- classifier --------------------------------------------------------------

TEST(OptClassifier, Fp32ResNetAtLargeBatchIsComputeBound) {
  ProfileOptions opt = base_options("a100", 256);
  opt.dtype = DType::kF32;
  const BottleneckReport cls = classify_model("resnet50", opt);
  EXPECT_EQ(cls.kind, Bottleneck::kCompute);
  EXPECT_GT(cls.compute_share, 0.8);
  EXPECT_EQ(cls.dominant_layers.size(), 3u);
}

TEST(OptClassifier, ShuffleNetIsBandwidthBoundWithDominantReorderShare) {
  // The §4.5 signal: over a third of the wall time in channel-shuffle
  // (Reshape/Transpose) data movement.
  const BottleneckReport cls =
      classify_model("shufflenetv2_10", base_options("a100", 2048));
  EXPECT_EQ(cls.kind, Bottleneck::kBandwidth);
  EXPECT_GT(cls.reorder_share, 0.35);
  EXPECT_LT(cls.compute_share, 0.2);
}

TEST(OptClassifier, TinyModelAtBatchOneIsOverheadBound) {
  // Per-kernel launch cost dwarfs the microseconds of useful work.
  const BottleneckReport cls =
      classify_model("mobilenetv2_05", base_options("a100", 1));
  EXPECT_EQ(cls.kind, Bottleneck::kOverhead);
  EXPECT_GT(cls.overhead_share, 0.35);
}

TEST(OptClassifier, SharesPartitionTheKernelTime) {
  const BottleneckReport cls =
      classify_model("resnet50", base_options("a100", 64));
  EXPECT_NEAR(cls.compute_share + cls.bandwidth_share + cls.reorder_share, 1.0,
              1e-9);
  EXPECT_GE(cls.overhead_share, 0.0);
  EXPECT_LE(cls.overhead_share, 1.0);
}

// --- variant generator -------------------------------------------------------

ProposalContext a100_context() {
  ProposalContext ctx;
  ctx.model_id = "shufflenetv2_10";
  ctx.platform_id = "a100";
  ctx.backend_id = "trt_sim";
  ctx.batch = 256;
  ctx.gpu_mhz = 1410.0;
  ctx.mem_mhz = 1215.0;
  ctx.supports_int8 = true;
  return ctx;
}

BottleneckReport classification(Bottleneck kind) {
  BottleneckReport cls;
  cls.kind = kind;
  return cls;
}

bool has_variant(const std::vector<Variant>& variants, const std::string& id) {
  for (const Variant& v : variants) {
    if (v.id == id) {
      return true;
    }
  }
  return false;
}

TEST(OptVariants, BandwidthBoundProposesTheModRedesign) {
  const std::vector<Variant> variants =
      propose_variants(a100_context(), classification(Bottleneck::kBandwidth));
  EXPECT_TRUE(has_variant(variants, "model=shufflenetv2_10_mod"));
  EXPECT_TRUE(has_variant(variants, "precision=int8"));
}

TEST(OptVariants, ComputeBoundSkipsTheModRedesignWithoutReorderShare) {
  ProposalContext ctx = a100_context();
  const std::vector<Variant> variants =
      propose_variants(ctx, classification(Bottleneck::kCompute));
  EXPECT_FALSE(has_variant(variants, "model=shufflenetv2_10_mod"));
  // Batch probes one step in each direction.
  EXPECT_TRUE(has_variant(variants, "batch=512"));
  EXPECT_TRUE(has_variant(variants, "batch=128"));
}

TEST(OptVariants, OverheadBoundScalesBatchUpOnly) {
  const std::vector<Variant> variants =
      propose_variants(a100_context(), classification(Bottleneck::kOverhead));
  EXPECT_TRUE(has_variant(variants, "batch=512"));
  EXPECT_TRUE(has_variant(variants, "batch=1024"));
  EXPECT_FALSE(has_variant(variants, "batch=128"));
}

TEST(OptVariants, ClockAxisNeedsAPowerIncentive) {
  ProposalContext ctx = a100_context();
  size_t clock_variants = 0;
  for (const Variant& v :
       propose_variants(ctx, classification(Bottleneck::kBandwidth))) {
    clock_variants += v.axis == "clocks";
  }
  EXPECT_EQ(clock_variants, 0u) << "latency objective, no budget";

  ctx.power_budget_w = 200.0;
  clock_variants = 0;
  for (const Variant& v :
       propose_variants(ctx, classification(Bottleneck::kBandwidth))) {
    clock_variants += v.axis == "clocks";
  }
  EXPECT_GT(clock_variants, 0u) << "a power budget enables the DVFS grid";
}

TEST(OptVariants, AxisConfigRoundTripsAndRejectsUnknownNames) {
  EXPECT_EQ(axes_to_string(axes_from_string("model,clocks")), "model,clocks");
  const AxisConfig all;
  EXPECT_EQ(axes_to_string(all), "model,precision,batch,backend,clocks");
  EXPECT_THROW((void)axes_from_string("model,warp"), ConfigError);
  EXPECT_THROW((void)objective_from_name("speed"), ConfigError);
}

TEST(OptVariants, QuantizedContextDoesNotReproposeInt8) {
  ProposalContext ctx = a100_context();
  ctx.quantized = true;
  EXPECT_FALSE(has_variant(
      propose_variants(ctx, classification(Bottleneck::kCompute)),
      "precision=int8"));
}

// --- §4.5 rediscovery --------------------------------------------------------

TEST(OptCaseStudies, RediscoversShuffleRemovalOnA100) {
  OptimizeOptions options;
  options.base = base_options("a100", 2048);
  const OptimizeResult result = optimize("shufflenetv2_10", options);

  // Classified bandwidth-bound with the reorder share the paper points at.
  ASSERT_FALSE(result.log.rounds.empty());
  const BottleneckReport& cls = result.log.rounds[0].classification;
  EXPECT_EQ(cls.kind, Bottleneck::kBandwidth);
  EXPECT_GT(cls.reorder_share, 0.35);

  // The redesign was proposed AND accepted; the loop converged on it.
  ASSERT_FALSE(result.log.accepted_chain.empty());
  EXPECT_EQ(result.log.accepted_chain[0], "model=shufflenetv2_10_mod");
  EXPECT_EQ(result.final_model_id, "shufflenetv2_10_mod");
  EXPECT_EQ(result.final_report.model_name, "shufflenetv2_10_mod");

  // Table 5 territory: 1.39–1.64x on real hardware; the simulator lands in
  // a generous band around it.
  const double speedup =
      result.baseline_report.total_latency_s / result.final_report.total_latency_s;
  EXPECT_GT(speedup, 1.15);
  EXPECT_LT(speedup, 2.2);

  // Rejected variants are recorded too, with their deltas.
  size_t rejected = 0;
  for (const VariantResult& v : result.log.rounds[0].variants) {
    rejected += !v.accepted;
    if (!v.accepted && v.measurement.feasible) {
      EXPECT_NE(v.delta_pct, 0.0) << v.variant.id;
    }
  }
  EXPECT_GT(rejected, 0u);
  size_t recorded = 0;
  for (const RoundLog& round : result.log.rounds) {
    recorded += round.variants.size();
  }
  EXPECT_EQ(result.log.variants_evaluated, recorded);
}

// --- §4.6 rediscovery --------------------------------------------------------

TEST(OptCaseStudies, FindsOrinClockPointUnderPowerBudget) {
  OptimizeOptions options;
  options.base = base_options("orin_nx16", 128);
  // Table 7 fixes the CPU clusters low; the search is over GPU x EMC.
  options.base.clocks.gpu_mhz = 918.0;
  options.base.clocks.mem_mhz = 3199.0;
  options.base.clocks.cpu_cluster_mhz = {729.0, 0.0};
  options.power_budget_w = 15.0;
  options.axes = axes_from_string("clocks");
  const OptimizeResult result = optimize("efficientnetv2_t", options);

  // The nominal-clock baseline busts the budget; the guard escaped it.
  EXPECT_FALSE(result.log.baseline.feasible);
  EXPECT_GT(result.baseline_report.power_w, 15.0);
  ASSERT_FALSE(result.log.accepted_chain.empty());
  EXPECT_TRUE(result.log.final_best.feasible);

  // Table 7 "ours": GPU 612 MHz / EMC 2133 MHz, within the 15 W envelope.
  ASSERT_TRUE(result.final_options.clocks.gpu_mhz.has_value());
  ASSERT_TRUE(result.final_options.clocks.mem_mhz.has_value());
  EXPECT_DOUBLE_EQ(*result.final_options.clocks.gpu_mhz, 612.0);
  EXPECT_DOUBLE_EQ(*result.final_options.clocks.mem_mhz, 2133.0);
  EXPECT_LT(result.final_report.power_w, 15.0);

  // "<5% perf loss" vs the same GPU clock with the unconstrained memory
  // clock (the paper's headline for capping EMC at 2133).
  ProfileOptions unconstrained = options.base;
  unconstrained.clocks.gpu_mhz = 612.0;
  unconstrained.clocks.mem_mhz = 3199.0;
  const ProfileReport free_mem =
      Profiler(unconstrained).run(models::build_model("efficientnetv2_t"));
  EXPECT_LT(result.final_report.total_latency_s,
            free_mem.total_latency_s * 1.05);

  // Every over-budget point was measured, rejected, and annotated.
  for (const RoundLog& round : result.log.rounds) {
    for (const VariantResult& v : round.variants) {
      if (!v.measurement.feasible) {
        EXPECT_FALSE(v.accepted);
        EXPECT_EQ(v.measurement.note, "power budget exceeded");
      }
    }
  }
}

// --- determinism -------------------------------------------------------------

/// Resets the global pool + cache, runs `fn`, restores the default pool.
template <typename F>
auto with_jobs(unsigned jobs, F&& fn) {
  ThreadPool::set_global_jobs(jobs);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();
  auto result = fn();
  ThreadPool::set_global_jobs(0);
  return result;
}

/// Zeroes the report's wall-clock fields (the same ones the golden suite
/// normalizes) — everything else must be byte-stable.
std::string normalize_wall_clock(std::string json) {
  for (const std::string key :
       {std::string("\"analysis_time_s\":"),
        std::string("\"counter_profiling_time_s\":")}) {
    size_t pos = 0;
    while ((pos = json.find(key, pos)) != std::string::npos) {
      const size_t begin = pos + key.size();
      size_t end = begin;
      while (end < json.size() && json[end] != ',' && json[end] != '}') {
        ++end;
      }
      json.replace(begin, end - begin, "0");
      pos = begin;
    }
  }
  return json;
}

TEST(OptDeterminism, OptimizationReportIsByteIdenticalAcrossJobCounts) {
  const auto run = [] {
    OptimizeOptions options;
    options.base = base_options("a100", 64);
    options.axes = axes_from_string("precision,batch,backend");
    options.max_rounds = 2;
    const OptimizeResult result = optimize("shufflenetv2_05", options);
    return normalize_wall_clock(report_to_json(
        result.final_report, false, optimization_section_json(result.log)));
  };
  const std::string serial = with_jobs(1, run);
  const std::string parallel = with_jobs(4, run);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"optimization\":"), std::string::npos);
}

TEST(OptDeterminism, OptimizationSectionIsValidJson) {
  OptimizeOptions options;
  options.base = base_options("a100", 256);
  options.max_rounds = 1;
  const OptimizeResult result = optimize("shufflenetv2_10", options);
  const std::string section = optimization_section_json(result.log);
  const json::Value parsed = json::parse(section);

  EXPECT_EQ(parsed.get_string("objective"), "latency");
  const json::Value* rounds = parsed.find("rounds");
  ASSERT_NE(rounds, nullptr);
  ASSERT_TRUE(rounds->is_array());
  ASSERT_FALSE(rounds->array.empty());
  const json::Value* variants = rounds->array[0].find("variants");
  ASSERT_NE(variants, nullptr);
  EXPECT_FALSE(variants->array.empty());
  // Accepted and rejected variants both present, each with a delta field.
  bool saw_accepted = false;
  bool saw_rejected = false;
  for (const json::Value& v : variants->array) {
    const json::Value* accepted = v.find("accepted");
    ASSERT_NE(accepted, nullptr);
    (accepted->bool_value ? saw_accepted : saw_rejected) = true;
    EXPECT_NE(v.find("delta_pct"), nullptr);
    EXPECT_NE(v.find("measurement"), nullptr);
  }
  EXPECT_TRUE(saw_accepted);
  EXPECT_TRUE(saw_rejected);

  // And the full-report splice parses as one document.
  const std::string full = report_to_json(result.final_report, false, section);
  EXPECT_NO_THROW((void)json::parse(full));
}

}  // namespace
}  // namespace proof::opt

// Unit tests: Optimized Analyze Representation — aliases, _FusedOp overlay,
// fusion-aware memory model (paper §3.2.3, Figure 2).
#include <gtest/gtest.h>

#include "analysis/optimized_representation.hpp"
#include "models/builder.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

class OarTest : public ::testing::Test {
 protected:
  OarTest() : ar_(proof::testing::small_cnn()), oar_(ar_) {}
  AnalyzeRepresentation ar_;
  OptimizedAnalyzeRepresentation oar_;
};

TEST_F(OarTest, AliasResolution) {
  oar_.set_tensor_alias("Conv_0_out", "t_reordered");
  EXPECT_EQ(oar_.resolve("t_reordered"), "Conv_0_out");
  EXPECT_EQ(oar_.resolve("Conv_0_out"), "Conv_0_out");
  // Alias chains resolve transitively.
  oar_.set_tensor_alias("t_reordered", "t_reordered2");
  EXPECT_EQ(oar_.resolve("t_reordered2"), "Conv_0_out");
}

TEST_F(OarTest, IoSearchWithAliasedBoundary) {
  const Graph& g = ar_.graph();
  const NodeId conv = g.find_node("Conv_0");
  const NodeId bn = g.find_node("BatchNormalization_0");
  const NodeId relu = g.find_node("Relu_0");
  ASSERT_NE(conv, kInvalidNode);
  // Backend renamed the input tensor; register alias then search by it.
  oar_.set_tensor_alias("input", "input_r");
  const auto found =
      oar_.get_subgraph_ops_by_io({"input_r"}, {g.node(relu).outputs[0]});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, (std::vector<NodeId>{conv, bn, relu}));
}

TEST_F(OarTest, SetFusedOpClaimsNodes) {
  const Graph& g = ar_.graph();
  const std::vector<NodeId> members = {g.find_node("Conv_0"),
                                       g.find_node("BatchNormalization_0"),
                                       g.find_node("Relu_0")};
  const FusedOpId id = oar_.set_fused_op("fused_conv_bn_relu", members);
  for (const NodeId m : members) {
    EXPECT_TRUE(oar_.is_fused(m));
  }
  // Double-claiming throws.
  EXPECT_THROW((void)oar_.set_fused_op("again", {members[0]}), Error);
  // IO search refuses claimed nodes.
  EXPECT_FALSE(
      oar_.get_subgraph_ops_by_io({"input"}, {g.node(members[2]).outputs[0]})
          .has_value());
  const auto layer = oar_.layer_for_fused(id);
  EXPECT_TRUE(layer.is_fused);
  EXPECT_EQ(layer.members, members);
}

TEST_F(OarTest, FusedFlopsIsSumOfMembers) {
  const Graph& g = ar_.graph();
  const std::vector<NodeId> members = {g.find_node("Conv_0"),
                                       g.find_node("BatchNormalization_0"),
                                       g.find_node("Relu_0")};
  double expected = 0.0;
  for (const NodeId m : members) {
    expected += ar_.analysis(m).flops;
  }
  EXPECT_DOUBLE_EQ(oar_.fused_flops(members), expected);
}

TEST_F(OarTest, FusedMemoryElidesIntermediates) {
  // The paper's key accuracy improvement: fused subgraph traffic counts only
  // boundary tensors, so it must be strictly below the naive member sum when
  // intermediates exist.
  const Graph& g = ar_.graph();
  const std::vector<NodeId> members = {g.find_node("Conv_0"),
                                       g.find_node("BatchNormalization_0"),
                                       g.find_node("Relu_0")};
  double naive = 0.0;
  for (const NodeId m : members) {
    naive += ar_.analysis(m).memory.total();
  }
  const double fused = oar_.fused_memory(members).total();
  EXPECT_LT(fused, naive);
  // Boundary accounting: exactly input + output + params of the subgraph.
  const Graph::Boundary bd = g.boundary(members);
  double expected = 0.0;
  for (const auto& t : bd.inputs) expected += g.tensor(t).size_bytes();
  for (const auto& t : bd.outputs) expected += g.tensor(t).size_bytes();
  for (const auto& t : bd.params) expected += g.tensor(t).size_bytes();
  EXPECT_DOUBLE_EQ(fused, expected);
}

TEST_F(OarTest, SingletonMemoryUsesPerOpRule) {
  const Graph& g = ar_.graph();
  const NodeId flatten = g.find_node("Flatten_0");
  ASSERT_NE(flatten, kInvalidNode);
  // Flatten is a zero-copy view; per-op rule says 0 traffic, while the
  // boundary rule would charge in+out.
  EXPECT_DOUBLE_EQ(oar_.fused_memory({flatten}).total(), 0.0);
}

TEST_F(OarTest, LayersViewPartitionsAllNodes) {
  const Graph& g = ar_.graph();
  (void)oar_.set_fused_op("f0", {g.find_node("Conv_0"),
                                 g.find_node("BatchNormalization_0"),
                                 g.find_node("Relu_0")});
  const auto layers = oar_.layers();
  size_t covered = 0;
  for (const auto& layer : layers) {
    covered += layer.members.size();
  }
  EXPECT_EQ(covered, g.num_nodes());
  // Total FLOP preserved under the overlay (fusion invariant).
  double flops = 0.0;
  for (const auto& layer : layers) {
    flops += layer.flops;
  }
  EXPECT_DOUBLE_EQ(flops, ar_.total_flops());
}

TEST_F(OarTest, DominantClassPrefersFlopHeavyMember) {
  const Graph& g = ar_.graph();
  const std::vector<NodeId> members = {g.find_node("Conv_0"),
                                       g.find_node("Relu_0")};
  EXPECT_EQ(oar_.dominant_class(members), OpClass::kConv);
}

TEST_F(OarTest, DominantClassFallsBackToBytes) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 8, 4, 4});
  const std::string t = b.transpose(x, {0, 2, 3, 1});
  const std::string r = b.reshape(t, {1, 128});
  const Graph g = b.finish({r});
  const AnalyzeRepresentation ar(g);
  const OptimizedAnalyzeRepresentation oar(ar);
  // Transpose has 0 FLOP; class should come from traffic (data movement).
  EXPECT_EQ(oar.dominant_class({g.producer(t), g.producer(r)}),
            OpClass::kDataMovement);
}

TEST_F(OarTest, AliasToSelfRejected) {
  EXPECT_THROW(oar_.set_tensor_alias("input", "input"), Error);
}

}  // namespace
}  // namespace proof

// Shape-polymorphic AnalysisPlan cache (core/analysis_plan.hpp): structural
// fingerprint properties, byte-identity of every golden with the cache on vs
// PROOF_PLAN_CACHE=0, mutation-fuzz proof that structural rewrites invalidate
// the plan (no stale reuse), stats/capacity behaviour, and a concurrency
// suite (PlanCache.*) run under TSan via scripts/check_tsan.sh.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/quantize.hpp"
#include "analysis/shape_inference.hpp"
#include "backends/backend.hpp"
#include "core/decode_sweep.hpp"
#include "core/prep_cache.hpp"
#include "core/profiler.hpp"
#include "core/report_json.hpp"
#include "hw/platform.hpp"
#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "opt/optimizer.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

#ifndef PROOF_TEST_SOURCE_DIR
#error "tests/CMakeLists.txt must define PROOF_TEST_SOURCE_DIR"
#endif

namespace proof {
namespace {

uint64_t structural_fp(const Graph& g) {
  return graph_fingerprint(g, FingerprintMode::kStructural);
}

uint64_t exact_fp(const Graph& g) {
  return graph_fingerprint(g, FingerprintMode::kExact);
}

/// Fresh cache + stats with both levels enabled; every gtest case runs in its
/// own ctest process (gtest_discover_tests), so nothing needs restoring.
void reset_cache(bool plan_cache_on = true) {
  PrepCache::instance().set_enabled(true);
  PrepCache::instance().set_plan_cache_enabled(plan_cache_on);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();
}

// --- structural fingerprint properties --------------------------------------

TEST(StructuralFingerprint, DropsGraphNameKeepsExactSensitive) {
  const Graph base = proof::testing::small_cnn();
  Graph renamed = base;
  renamed.set_name("something_else");
  EXPECT_EQ(structural_fp(base), structural_fp(renamed));
  EXPECT_NE(exact_fp(base), exact_fp(renamed));
}

TEST(StructuralFingerprint, SymbolizesBatchDims) {
  const Graph base = proof::testing::small_cnn();
  Graph batched = base;
  set_batch_size(batched, 8);
  // The batch lives in non-param tensor dims (rank-erased structurally).
  EXPECT_EQ(structural_fp(base), structural_fp(batched));
  EXPECT_NE(exact_fp(base), exact_fp(batched));
}

TEST(StructuralFingerprint, SharedAcrossDecodePositions) {
  const models::LlmConfig& cfg = models::llm_config("gpt2");
  const Graph p64 = models::build_llm_decode_step(cfg, 64);
  const Graph p512 = models::build_llm_decode_step(cfg, 512);
  // The position appears only in the graph name and the past_k_/past_v_
  // input dims (models/zoo_llm.cpp contract): one structural fingerprint.
  EXPECT_EQ(structural_fp(p64), structural_fp(p512));
  EXPECT_NE(exact_fp(p64), exact_fp(p512));
  // But a genuinely different graph (prefill) must not collide.
  const Graph prefill = models::build_llm_prefill(cfg, 64);
  EXPECT_NE(structural_fp(p64), structural_fp(prefill));
}

TEST(StructuralFingerprint, SensitiveToOpTypesAttrsAndParamShapes) {
  const Graph base = proof::testing::small_cnn();

  // Op-type change (Relu -> Gelu): different fusion structure, different fp.
  models::GraphBuilder gelu_b("small_cnn");
  {
    std::string x = gelu_b.input("input", Shape{1, 3, 32, 32});
    x = gelu_b.conv(x, 8, 3, 1);
    x = gelu_b.batchnorm(x);
    x = gelu_b.act(x, "Gelu");
    std::string y = gelu_b.conv(x, 8, 3, 1);
    y = gelu_b.add(y, x);
    y = gelu_b.act(y, "Relu");
    y = gelu_b.global_avgpool(y);
    y = gelu_b.flatten(y);
    y = gelu_b.linear(y, 10);
    const Graph gelu = gelu_b.finish({y});
    EXPECT_NE(structural_fp(base), structural_fp(gelu));
  }

  // Param-shape change (8 -> 16 channels): params hash full dims.
  models::GraphBuilder wide_b("small_cnn");
  {
    std::string x = wide_b.input("input", Shape{1, 3, 32, 32});
    x = wide_b.conv(x, 16, 3, 1);
    x = wide_b.batchnorm(x);
    x = wide_b.act(x, "Relu");
    std::string y = wide_b.conv(x, 16, 3, 1);
    y = wide_b.add(y, x);
    y = wide_b.act(y, "Relu");
    y = wide_b.global_avgpool(y);
    y = wide_b.flatten(y);
    y = wide_b.linear(y, 10);
    const Graph wide = wide_b.finish({y});
    EXPECT_NE(structural_fp(base), structural_fp(wide));
  }

  // Attr change (stride 1 -> 2): attrs are hashed verbatim.
  models::GraphBuilder stride_b("small_cnn");
  {
    std::string x = stride_b.input("input", Shape{1, 3, 32, 32});
    x = stride_b.conv(x, 8, 3, 2);
    x = stride_b.batchnorm(x);
    x = stride_b.act(x, "Relu");
    x = stride_b.global_avgpool(x);
    x = stride_b.flatten(x);
    x = stride_b.linear(x, 10);
    const Graph strided = stride_b.finish({x});
    EXPECT_NE(structural_fp(base), structural_fp(strided));
  }
}

TEST(StructuralFingerprint, ComputeGraphKeysMatchesSinglePassHashes) {
  for (const Graph& g :
       {proof::testing::small_cnn(), proof::testing::small_transformer()}) {
    const GraphKeys keys = compute_graph_keys(g);
    EXPECT_EQ(keys.exact, exact_fp(g));
    EXPECT_EQ(keys.structural, structural_fp(g));
  }
}

// --- golden byte-identity: plan cache on vs PROOF_PLAN_CACHE=0 ---------------

std::string golden_path(const std::string& id) {
  return std::string(PROOF_TEST_SOURCE_DIR) + "/golden/" + id + ".json";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Zeroes the wall-clock fields, mirroring test_golden_reports.cpp.
std::string normalize(std::string json) {
  for (const char* key :
       {"\"analysis_time_s\":", "\"counter_profiling_time_s\":"}) {
    const size_t key_len = std::strlen(key);
    size_t pos = json.find(key);
    while (pos != std::string::npos) {
      const size_t start = pos + key_len;
      const size_t end = json.find_first_of(",}", start);
      if (end == std::string::npos) {
        break;
      }
      json.replace(start, end - start, "0");
      pos = json.find(key, start);
    }
  }
  return json;
}

std::string generate_report(const std::string& model_id) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = model_id == "sd_unet" ? 2 : 4;
  opt.mode = MetricMode::kPredicted;
  return normalize(report_to_json(Profiler(opt).run_zoo(model_id)));
}

std::string generate_optimize() {
  opt::OptimizeOptions options;
  options.base.platform_id = "a100";
  options.base.backend_id = "trt_sim";
  options.base.dtype = DType::kF16;
  options.base.batch = 256;
  options.base.mode = MetricMode::kPredicted;
  const opt::OptimizeResult result = opt::optimize("shufflenetv2_10", options);
  return normalize(report_to_json(result.final_report, false,
                                  opt::optimization_section_json(result.log)));
}

std::string generate_decode_sweep() {
  DecodeSweepOptions opt;
  opt.config_id = "gpt2";
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.prefill_len = 512;
  opt.batches = {1, 4};
  opt.positions = {64, 256};
  return decode_sweep_json(sweep_decode(opt));
}

/// Runs `generate` with the plan cache on, then off (fresh cache both times),
/// and demands byte-identical output.  When `golden_id` is non-empty the
/// on-path output must also match the frozen golden on disk — the cache may
/// not even perturb the historical bytes.
void expect_on_off_identical(const std::string& golden_id,
                             std::string (*generate)()) {
  reset_cache(/*plan_cache_on=*/true);
  const std::string with_cache = generate();
  ASSERT_FALSE(with_cache.empty());
  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_GE(stats.plan_cache_misses, 1u)
      << "plan cache enabled but never consulted — the A/B proves nothing";

  reset_cache(/*plan_cache_on=*/false);
  const std::string without_cache = generate();
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 0u);
  EXPECT_EQ(PrepCache::instance().stats().plan_cache_misses, 0u);

  EXPECT_EQ(with_cache, without_cache)
      << "plan-cache instantiation diverged from the full prepare pipeline";

  if (!golden_id.empty()) {
    const std::string frozen = read_file(golden_path(golden_id));
    ASSERT_FALSE(frozen.empty()) << "missing golden " << golden_path(golden_id);
    EXPECT_EQ(with_cache, frozen)
        << "plan-cache output drifted from frozen golden " << golden_id;
  }
  PrepCache::instance().set_plan_cache_enabled(true);
}

class PlanCacheGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanCacheGolden, ReportByteIdenticalOnVsOff) {
  const std::string model_id = GetParam();
  reset_cache(true);
  const std::string on = generate_report(model_id);
  EXPECT_GE(PrepCache::instance().stats().plan_cache_misses, 1u);
  reset_cache(false);
  const std::string off = generate_report(model_id);
  EXPECT_EQ(on, off);
  const std::string frozen = read_file(golden_path(model_id));
  ASSERT_FALSE(frozen.empty()) << "missing golden " << golden_path(model_id);
  EXPECT_EQ(on, frozen);
  PrepCache::instance().set_plan_cache_enabled(true);
}

INSTANTIATE_TEST_SUITE_P(FourZooModels, PlanCacheGolden,
                         ::testing::Values("resnet50", "bert_base",
                                           "shufflenetv2_10", "sd_unet"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(PlanCacheGoldenOptimize, ByteIdenticalOnVsOff) {
  expect_on_off_identical("optimize_shufflenetv2_10", &generate_optimize);
}

TEST(PlanCacheGoldenDecodeSweep, ByteIdenticalOnVsOff) {
  expect_on_off_identical("decode_sweep_gpt2", &generate_decode_sweep);
}

// --- mutation fuzz: structural rewrites must invalidate the plan -------------

std::string profile_normalized(const Graph& model) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = 2;
  opt.mode = MetricMode::kPredicted;
  return normalize(report_to_json(Profiler(opt).run(model)));
}

/// Seeds the plan cache with `base`, then profiles `mutated` and checks
/// (a) the mutated graph MISSES (no stale-plan reuse: misses go up, hits do
/// not) and (b) its report is byte-identical to a cache-off run.
void expect_invalidates(const Graph& base, const Graph& mutated) {
  ASSERT_NE(structural_fp(base), structural_fp(mutated))
      << base.name() << " vs " << mutated.name()
      << ": mutation did not change the structural fingerprint";

  reset_cache(true);
  (void)profile_normalized(base);
  const PrepCacheStats seeded = PrepCache::instance().stats();
  EXPECT_GE(seeded.plan_cache_misses, 1u);

  const std::string with_cache = profile_normalized(mutated);
  const PrepCacheStats after = PrepCache::instance().stats();
  EXPECT_GT(after.plan_cache_misses, seeded.plan_cache_misses)
      << "mutated graph did not miss the plan cache";
  EXPECT_EQ(after.plan_cache_hits, seeded.plan_cache_hits)
      << "stale plan reused for a structurally rewritten graph";

  reset_cache(false);
  const std::string without_cache = profile_normalized(mutated);
  EXPECT_EQ(with_cache, without_cache);
  PrepCache::instance().set_plan_cache_enabled(true);
}

TEST(PlanCacheMutationFuzz, QuantizePassInvalidates) {
  const Graph base = proof::testing::small_cnn();
  Graph qdq = base;
  const QuantizeStats qstats = quantize_to_qdq(qdq);
  ASSERT_GT(qstats.quantized_anchors, 0u);
  expect_invalidates(base, qdq);
}

TEST(PlanCacheMutationFuzz, ModRedesignInvalidates) {
  expect_invalidates(models::build_model("shufflenetv2_10"),
                     models::build_model("shufflenetv2_10_mod"));
}

TEST(PlanCacheMutationFuzz, FusionToggleRewritesInvalidate) {
  // Rewrites that flip what the backends can fuse: dropping the BN between
  // conv and activation, and swapping the activation op.  Both must re-plan.
  const Graph base = proof::testing::small_cnn();

  models::GraphBuilder no_bn("small_cnn");
  std::string x = no_bn.input("input", Shape{1, 3, 32, 32});
  x = no_bn.conv(x, 8, 3, 1);
  x = no_bn.act(x, "Relu");
  std::string y = no_bn.conv(x, 8, 3, 1);
  y = no_bn.add(y, x);
  y = no_bn.act(y, "Relu");
  y = no_bn.global_avgpool(y);
  y = no_bn.flatten(y);
  y = no_bn.linear(y, 10);
  expect_invalidates(base, no_bn.finish({y}));

  models::GraphBuilder swapped("small_cnn");
  x = swapped.input("input", Shape{1, 3, 32, 32});
  x = swapped.conv(x, 8, 3, 1);
  x = swapped.batchnorm(x);
  x = swapped.act(x, "Sigmoid");
  y = swapped.conv(x, 8, 3, 1);
  y = swapped.add(y, x);
  y = swapped.act(y, "Sigmoid");
  y = swapped.global_avgpool(y);
  y = swapped.flatten(y);
  y = swapped.linear(y, 10);
  expect_invalidates(base, swapped.finish({y}));
}

TEST(PlanCacheMutationFuzz, BatchChangeHitsAndStaysByteIdentical) {
  // Positive control: the shape-only change the cache exists for must HIT and
  // still reproduce the cache-off bytes.
  const Graph model = proof::testing::small_cnn();
  const auto profile_at = [&](int64_t batch) {
    ProfileOptions opt;
    opt.platform_id = "a100";
    opt.backend_id = "trt_sim";
    opt.dtype = DType::kF16;
    opt.batch = batch;
    opt.mode = MetricMode::kPredicted;
    return normalize(report_to_json(Profiler(opt).run(model)));
  };

  reset_cache(true);
  (void)profile_at(2);
  const std::string hit_json = profile_at(4);
  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.plan_cache_collisions, 0u);

  reset_cache(false);
  (void)profile_at(2);
  EXPECT_EQ(hit_json, profile_at(4));
  PrepCache::instance().set_plan_cache_enabled(true);
}

// --- concurrency + stats suite (TSan: scripts/check_tsan.sh) -----------------

backends::BuildConfig config_for_batch(int64_t batch) {
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = batch;
  return config;
}

TEST(PlanCache, ConcurrentMixedBatchesShareOnePlan) {
  reset_cache(true);
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get("a100");
  const std::vector<int64_t> batches = {1, 2, 3, 4, 5, 6, 7, 8};

  constexpr size_t kRounds = 4;
  ThreadPool pool(8);
  const size_t total = batches.size() * kRounds;
  std::vector<std::shared_ptr<const PreparedEngine>> results(total);
  pool.parallel_for(total, [&](size_t i) {
    results[i] = PrepCache::instance().get_or_prepare(
        model, backend, platform, config_for_batch(batches[i % batches.size()]));
  });

  std::set<const PreparedEngine*> distinct;
  for (size_t i = 0; i < total; ++i) {
    ASSERT_NE(results[i], nullptr);
    distinct.insert(results[i].get());
    EXPECT_EQ(results[i].get(), results[i % batches.size()].get());
  }
  EXPECT_EQ(distinct.size(), batches.size());

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_misses, batches.size());
  EXPECT_EQ(stats.engine_hits, total - batches.size());
  // One structure phase for all 8 batches; every other engine build
  // instantiated the shared frozen plan.
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, batches.size() - 1);
  EXPECT_EQ(stats.plan_cache_collisions, 0u);
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 1u);
  // Plan-cache traffic also counts into the legacy plan ledger (the hit
  // skips the same fusion planning + mapping search).
  EXPECT_EQ(stats.plan_hits, stats.plan_cache_hits);
  EXPECT_EQ(stats.plan_misses, stats.plan_cache_misses);
}

TEST(PlanCache, DisabledFallsBackToLegacyPlanLevel) {
  reset_cache(false);
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get("a100");
  for (int64_t batch = 1; batch <= 3; ++batch) {
    (void)PrepCache::instance().get_or_prepare(model, backend, platform,
                                               config_for_batch(batch));
  }
  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.plan_cache_hits, 0u);
  EXPECT_EQ(stats.plan_cache_misses, 0u);
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 0u);
  // The legacy exact-fingerprint plan level still dedupes batches.
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 2u);
  PrepCache::instance().set_plan_cache_enabled(true);
}

TEST(PlanCache, CapacityBoundsPlansAndShrinksEagerly) {
  reset_cache(true);
  const size_t original = PrepCache::instance().plan_cache_capacity();
  PrepCache::instance().set_plan_cache_capacity(1);
  EXPECT_EQ(PrepCache::instance().plan_cache_capacity(), 1u);

  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get("a100");
  const Graph cnn = proof::testing::small_cnn();
  const Graph transformer = proof::testing::small_transformer();

  (void)PrepCache::instance().get_or_prepare(cnn, backend, platform,
                                             config_for_batch(1));
  (void)PrepCache::instance().get_or_prepare(transformer, backend, platform,
                                             config_for_batch(1));
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 1u);
  EXPECT_EQ(PrepCache::instance().stats().plan_cache_evictions, 1u);

  // The evicted plan rebuilds on demand — a miss, never an error.
  (void)PrepCache::instance().get_or_prepare(cnn, backend, platform,
                                             config_for_batch(2));
  EXPECT_EQ(PrepCache::instance().stats().plan_cache_misses, 3u);

  // Capacity 0 = unbounded; raising the cap keeps current entries.
  PrepCache::instance().set_plan_cache_capacity(0);
  (void)PrepCache::instance().get_or_prepare(transformer, backend, platform,
                                             config_for_batch(2));
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 2u);
  PrepCache::instance().set_plan_cache_capacity(original);
}

TEST(PlanCache, ClearDropsPlansButKeepsStats) {
  reset_cache(true);
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform =
      hw::PlatformRegistry::instance().get("a100");
  (void)PrepCache::instance().get_or_prepare(model, backend, platform,
                                             config_for_batch(1));
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 1u);
  PrepCache::instance().clear();
  EXPECT_EQ(PrepCache::instance().plan_cache_size(), 0u);
  EXPECT_EQ(PrepCache::instance().stats().plan_cache_misses, 1u);
  const uint64_t build_ns = PrepCache::instance().stats().plan_cache_build_ns;
  EXPECT_GT(build_ns, 0u) << "structure-phase build time not accounted";
}

}  // namespace
}  // namespace proof

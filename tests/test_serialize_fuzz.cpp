// Robustness tests: the text-format parser must reject malformed input with
// a ModelError (never crash or accept silently), across a sweep of mutations.
#include <gtest/gtest.h>

#include "graph/serialize.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

class MalformedInput : public ::testing::TestWithParam<std::string> {};

TEST_P(MalformedInput, RejectedWithModelError) {
  EXPECT_THROW((void)graph_from_text(GetParam()), ModelError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedInput,
    ::testing::Values(
        // unknown record kind
        "blob x",
        // malformed shapes
        "tensor t fp32 [2,) var", "tensor t fp32 2,3 var",
        "tensor t fp32 [a,b] var",
        // unknown dtype
        "tensor t fp99 [2] var",
        // malformed attributes
        "input x\ntensor x fp32 [1] var\nnode n Relu in=x out=y attr=q:1",
        "input x\ntensor x fp32 [1] var\nnode n Relu in=x out=y k=noTag",
        "input x\ntensor x fp32 [1] var\nnode n Relu in=x out=y k=is:1,x",
        // duplicate graph inputs
        "tensor x fp32 [1] var\ninput x\ninput x"));

TEST(SerializeFuzz, TruncationsNeverCrash) {
  // Every prefix of a valid serialization either parses or throws ModelError;
  // it must never crash or corrupt memory.
  const std::string text = graph_to_text(proof::testing::small_cnn());
  for (size_t cut = 0; cut < text.size(); cut += 37) {
    const std::string prefix = text.substr(0, cut);
    try {
      const Graph g = graph_from_text(prefix);
      (void)g.num_nodes();
    } catch (const Error&) {
      // acceptable outcome
    }
  }
  SUCCEED();
}

TEST(SerializeFuzz, RandomByteFlipsNeverCrash) {
  const std::string text = graph_to_text(proof::testing::small_transformer());
  Rng rng(0xF123);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = text;
    const size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>('!' + rng.next_below(90));
    try {
      const Graph g = graph_from_text(mutated);
      // If it parsed, basic accessors must still be safe.
      (void)g.num_nodes();
      (void)g.tensors().size();
    } catch (const Error&) {
      // rejection is fine
    }
  }
  SUCCEED();
}

TEST(SerializeFuzz, LineShufflesParseOrReject) {
  // The format is order-tolerant for tensors declared before use by records
  // order; shuffling whole lines must never crash.
  const std::string text = graph_to_text(proof::testing::small_cnn());
  std::vector<std::string> lines = strings::split(text, '\n');
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    // Fisher-Yates shuffle driven by the deterministic RNG.
    std::vector<std::string> shuffled = lines;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    try {
      const Graph g = graph_from_text(strings::join(shuffled, "\n"));
      (void)g.num_nodes();
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace proof

// Property sweep: every Table-3 model builds, fuses, lowers, maps and
// profiles correctly on every simulated runtime — the heaviest invariant
// suite, guarding the whole pipeline at once.
#include <gtest/gtest.h>

#include <set>

#include "core/profiler.hpp"
#include "mapping/layer_mapping.hpp"
#include "analysis/shape_inference.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

struct SweepCase {
  std::string model;
  std::string backend;
};

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  for (const models::ModelSpec& spec : models::model_zoo()) {
    for (const char* backend : {"trt_sim", "ov_sim", "ort_sim"}) {
      cases.push_back({spec.id, backend});
    }
  }
  return cases;
}

class FullZooSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(FullZooSweep, PipelineInvariants) {
  const auto& [model_id, backend_id] = GetParam();
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = backend_id;
  opt.dtype = DType::kF16;
  // DistilBERT ids are integer tensors; SD runs batch 2 to keep shapes small.
  opt.batch = model_id == "sd_unet" ? 2 : 4;
  opt.mode = MetricMode::kPredicted;
  const ProfileReport r = Profiler(opt).run_zoo(model_id);

  // 1. Everything mapped, nothing double-claimed.
  EXPECT_DOUBLE_EQ(r.mapping_coverage, 1.0);
  EXPECT_EQ(r.unmapped_layers, 0u);
  std::set<std::string> seen;
  for (const LayerReport& layer : r.layers) {
    for (const std::string& node : layer.model_nodes) {
      EXPECT_TRUE(seen.insert(node).second) << node << " claimed twice";
    }
  }

  // 2. FLOP conservation: fused-layer FLOP sums to the analytical total.
  Graph g = models::build_model(model_id);
  set_batch_size(g, opt.batch);
  convert_float_dtype(g, opt.dtype);
  const AnalyzeRepresentation ar(std::move(g));
  EXPECT_CLOSE(r.roofline.end_to_end.flops, ar.total_flops(), 1e-9)
      << "fusion must preserve FLOP";

  // 3. Fusion-aware traffic of the MODEL layers never exceeds the naive
  // unfused sum (backend-inserted reorder layers add extra traffic on top).
  double model_bytes = 0.0;
  for (const LayerReport& layer : r.layers) {
    if (!layer.is_reorder) {
      model_bytes += layer.bytes;
    }
  }
  EXPECT_LE(model_bytes, ar.total_memory().total() * 1.001);

  // 4. Latency positive, attained below the theoretical roof.
  EXPECT_GT(r.total_latency_s, 0.0);
  EXPECT_LE(r.roofline.end_to_end.attained_flops(),
            r.roofline.ceilings.peak_flops * 1.001);

  // 5. Shares sum to 1.
  double share = 0.0;
  for (const roofline::Point& p : r.roofline.layers) {
    share += p.latency_share;
  }
  EXPECT_NEAR(share, 1.0, 1e-9);
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return info.param.model + "_" + info.param.backend;
}

INSTANTIATE_TEST_SUITE_P(AllModelsAllBackends, FullZooSweep,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace proof

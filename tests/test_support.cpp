// Unit tests: support utilities (strings, rng, units, error macros).
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace proof {
namespace {

using strings::join;
using strings::split;
using strings::split_trimmed;
using strings::trim;

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrimmedDropsEmptyAndTrims) {
  const auto parts = split_trimmed("  a , b ,, c  ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, TrimHandlesAllWhitespace) {
  EXPECT_EQ(trim("  \t a b \n "), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(strings::starts_with("foobar", "foo"));
  EXPECT_FALSE(strings::starts_with("fo", "foo"));
  EXPECT_TRUE(strings::ends_with("foobar", "bar"));
  EXPECT_TRUE(strings::contains("foobar", "oba"));
  EXPECT_FALSE(strings::contains("foobar", "baz"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("a+b+c", "+", " + "), "a + b + c");
  EXPECT_EQ(strings::replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, ParseIntValidAndInvalid) {
  EXPECT_EQ(strings::parse_int(" 42 "), 42);
  EXPECT_EQ(strings::parse_int("-7"), -7);
  EXPECT_THROW((void)strings::parse_int("4x"), Error);
  EXPECT_THROW((void)strings::parse_int(""), Error);
}

TEST(Strings, ParseDoubleValidAndInvalid) {
  EXPECT_DOUBLE_EQ(strings::parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(strings::parse_double("1e3"), 1000.0);
  EXPECT_THROW((void)strings::parse_double("abc"), Error);
  EXPECT_THROW((void)strings::parse_double("1.2.3"), Error);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, FromStringIsStableAndSaltSensitive) {
  const uint64_t v1 = Rng::from_string("kernel_a").next_u64();
  const uint64_t v2 = Rng::from_string("kernel_a").next_u64();
  const uint64_t v3 = Rng::from_string("kernel_b").next_u64();
  const uint64_t v4 = Rng::from_string("kernel_a", 1).next_u64();
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);
  EXPECT_NE(v1, v4);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, GaussianRoughlyCentered) {
  Rng rng(99);
  double sum = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.next_gaussian();
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW((void)rng.next_below(0), Error);
}

TEST(Units, Formatting) {
  EXPECT_EQ(units::gflop(8.207e9), "8.207 GFLOP");
  EXPECT_EQ(units::tflops(12.152612e12), "12.153 TFLOP/s");
  EXPECT_EQ(units::gbps(555.062e9), "555.062 GB/s");
  EXPECT_EQ(units::ms(0.049543), "49.543 ms");
  EXPECT_EQ(units::megabytes(11669419000.0), "11669.419 MB");
}

TEST(Units, PercentSigned) {
  EXPECT_EQ(units::percent(-0.1982), "-19.82%");
  EXPECT_EQ(units::percent(0.0979), "+9.79%");
}

TEST(Units, SiScaling) {
  EXPECT_EQ(units::si(1.5e9, "FLOP"), "1.500 GFLOP");
  EXPECT_EQ(units::si(999.0, "B"), "999.000 B");
}

TEST(ErrorMacros, CheckThrowsWithContext) {
  try {
    PROOF_CHECK(1 == 2, "values " << 1 << " vs " << 2);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("values 1 vs 2"), std::string::npos);
  }
}

TEST(ErrorMacros, ErrorHierarchy) {
  EXPECT_THROW(throw ModelError("m"), Error);
  EXPECT_THROW(throw ConfigError("c"), Error);
}

}  // namespace
}  // namespace proof

// Shared helpers for the PRoof test suite.
#pragma once

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "models/builder.hpp"

namespace proof::testing {

/// Tiny conv->bn->relu->conv->add->relu graph used across suites.
inline Graph small_cnn() {
  models::GraphBuilder b("small_cnn");
  std::string x = b.input("input", Shape{1, 3, 32, 32});
  x = b.conv(x, 8, 3, 1);
  x = b.batchnorm(x);
  x = b.act(x, "Relu");
  std::string y = b.conv(x, 8, 3, 1);
  y = b.add(y, x);
  y = b.act(y, "Relu");
  y = b.global_avgpool(y);
  y = b.flatten(y);
  y = b.linear(y, 10);
  return b.finish({y});
}

/// Tiny transformer block (matmul-anchored) for fusion/mapping tests.
inline Graph small_transformer() {
  models::GraphBuilder b("small_transformer");
  std::string x = b.input("input", Shape{1, 16, 32});
  for (int i = 0; i < 2; ++i) {
    std::string h = b.layernorm(x);
    std::string q = b.linear(h, 32);
    std::string k = b.linear(h, 32);
    std::string attn = b.matmul(q, b.transpose(k, {0, 2, 1}));
    attn = b.softmax(attn);
    h = b.matmul(attn, b.linear(h, 32));
    x = b.add(x, h);
  }
  return b.finish({x});
}

/// Relative difference |a-b| / max(|b|, eps).
inline double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(b), 1e-12);
  return std::abs(a - b) / denom;
}

/// Combined absolute/relative closeness check:
///   |a - b| <= abs_tol + rel_tol * max(|a|, |b|)
/// Plain EXPECT_NEAR takes an absolute epsilon only, which is vacuous for
/// FLOP-scale magnitudes (1e12) and impossibly strict near zero; shared
/// helpers must use this instead so transformer-sized models are actually
/// constrained.  Use via EXPECT_CLOSE / EXPECT_CLOSE_ABS below.
inline ::testing::AssertionResult close_abs_rel(double a, double b,
                                                double rel_tol,
                                                double abs_tol) {
  const double diff = std::abs(a - b);
  const double bound = abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
  if (diff <= bound) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " vs " << b << ": |diff| = " << diff << " exceeds "
         << bound << " (rel_tol = " << rel_tol << ", abs_tol = " << abs_tol
         << ")";
}

/// Combined-tolerance expectation with a default absolute floor of 1e-12
/// (so exact-zero comparisons still pass).
#define EXPECT_CLOSE(a, b, rel_tol) \
  EXPECT_TRUE(::proof::testing::close_abs_rel((a), (b), (rel_tol), 1e-12))
#define EXPECT_CLOSE_ABS(a, b, rel_tol, abs_tol) \
  EXPECT_TRUE(::proof::testing::close_abs_rel((a), (b), (rel_tol), (abs_tol)))

}  // namespace proof::testing

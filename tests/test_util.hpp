// Shared helpers for the PRoof test suite.
#pragma once

#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "models/builder.hpp"

namespace proof::testing {

/// Tiny conv->bn->relu->conv->add->relu graph used across suites.
inline Graph small_cnn() {
  models::GraphBuilder b("small_cnn");
  std::string x = b.input("input", Shape{1, 3, 32, 32});
  x = b.conv(x, 8, 3, 1);
  x = b.batchnorm(x);
  x = b.act(x, "Relu");
  std::string y = b.conv(x, 8, 3, 1);
  y = b.add(y, x);
  y = b.act(y, "Relu");
  y = b.global_avgpool(y);
  y = b.flatten(y);
  y = b.linear(y, 10);
  return b.finish({y});
}

/// Tiny transformer block (matmul-anchored) for fusion/mapping tests.
inline Graph small_transformer() {
  models::GraphBuilder b("small_transformer");
  std::string x = b.input("input", Shape{1, 16, 32});
  for (int i = 0; i < 2; ++i) {
    std::string h = b.layernorm(x);
    std::string q = b.linear(h, 32);
    std::string k = b.linear(h, 32);
    std::string attn = b.matmul(q, b.transpose(k, {0, 2, 1}));
    attn = b.softmax(attn);
    h = b.matmul(attn, b.linear(h, 32));
    x = b.add(x, h);
  }
  return b.finish({x});
}

/// Relative difference |a-b| / max(|b|, eps).
inline double rel_diff(double a, double b) {
  const double denom = std::max(std::abs(b), 1e-12);
  return std::abs(a - b) / denom;
}

}  // namespace proof::testing

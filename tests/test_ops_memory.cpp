// Unit tests: the analytical memory-access model (Equation 1 + the per-type
// special rules of paper §3.2.1).
#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "ops/op_def.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

MemoryEstimate memory_of(const Graph& g, const std::string& out) {
  const NodeId id = g.producer(out);
  const Node& node = g.node(id);
  return op_def_for(node).memory(OpContext(g, node));
}

TEST(OpMemory, Equation1ForConv) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 16, 8, 8});  // fp32: 8192 B
  const std::string y = b.conv(x, 32, 3, 1, -1, 1, /*bias=*/true);
  const Graph g = b.finish({y});
  const MemoryEstimate m = memory_of(g, y);
  EXPECT_DOUBLE_EQ(m.read_bytes, 2.0 * 16 * 8 * 8 * 4);
  EXPECT_DOUBLE_EQ(m.write_bytes, 2.0 * 32 * 8 * 8 * 4);
  EXPECT_DOUBLE_EQ(m.param_bytes, (32.0 * 16 * 9 + 32.0) * 4);
}

TEST(OpMemory, StridedConvReadsFraction) {
  // kernel 1, stride 2: only 1/4 of input rows/cols are touched.
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 8, 16, 16});
  const std::string y = b.conv(x, 8, 1, 2, 0, 1, false);
  const Graph g = b.finish({y});
  const MemoryEstimate m = memory_of(g, y);
  EXPECT_DOUBLE_EQ(m.read_bytes, 8.0 * 16 * 16 * 4 * 0.25);
}

TEST(OpMemory, StridedConvWithCoveringKernelReadsAll) {
  // kernel 3, stride 2: receptive fields overlap, full input read.
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 8, 16, 16});
  const std::string y = b.conv(x, 8, 3, 2, 1, 1, false);
  const Graph g = b.finish({y});
  EXPECT_DOUBLE_EQ(memory_of(g, y).read_bytes, 8.0 * 16 * 16 * 4);
}

TEST(OpMemory, ViewOpsMoveNothing) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4, 256});
  const std::string r = b.reshape(x, {2, 512});
  const std::string f = b.flatten(x, 0);
  const Graph g = b.finish({r, f});
  EXPECT_DOUBLE_EQ(memory_of(g, r).total(), 0.0);
  EXPECT_DOUBLE_EQ(memory_of(g, f).total(), 0.0);
}

TEST(OpMemory, ShapeOpWritesOnlyMetadata) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4, 256, 7, 7});
  const std::string s = b.node("Shape", {x});
  const Graph g = b.finish({s});
  const MemoryEstimate m = memory_of(g, s);
  EXPECT_DOUBLE_EQ(m.read_bytes, 0.0);
  EXPECT_DOUBLE_EQ(m.write_bytes, 4.0 * sizeof(int64_t));
}

TEST(OpMemory, TransposeMovesFullTensor) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{8, 64, 28, 28});
  const std::string t = b.transpose(x, {0, 2, 1, 3});
  const Graph g = b.finish({t});
  const MemoryEstimate m = memory_of(g, t);
  const double bytes = 8.0 * 64 * 28 * 28 * 4;
  EXPECT_DOUBLE_EQ(m.read_bytes, bytes);
  EXPECT_DOUBLE_EQ(m.write_bytes, bytes);
}

TEST(OpMemory, SliceReadsOnlyTheWindow) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 100, 64});
  const std::string s = b.slice(x, {1}, {0}, {10});
  const Graph g = b.finish({s});
  const MemoryEstimate m = memory_of(g, s);
  EXPECT_DOUBLE_EQ(m.read_bytes, 10.0 * 64 * 4);
  EXPECT_DOUBLE_EQ(m.write_bytes, 10.0 * 64 * 4);
}

TEST(OpMemory, GatherReadsSelectedRowsPlusIndices) {
  GraphBuilder b("g");
  const std::string ids = b.input("ids", Shape{1, 16}, DType::kI64);
  const std::string e = b.embedding(ids, 30522, 768);
  const Graph g = b.finish({e});
  const MemoryEstimate m = memory_of(g, e);
  const double out_bytes = 16.0 * 768 * 4;
  EXPECT_DOUBLE_EQ(m.read_bytes, out_bytes + 16.0 * 8);
  EXPECT_DOUBLE_EQ(m.write_bytes, out_bytes);
  // Crucially NOT the whole 30522x768 table.
  EXPECT_LT(m.total(), 30522.0 * 768 * 4);
}

TEST(OpMemory, DtypeHalvesTrafficForF16) {
  GraphBuilder b32("g32");
  const std::string x32 = b32.input("x", Shape{1, 64, 16, 16});
  const std::string y32 = b32.act(x32, "Relu");
  const Graph g32 = b32.finish({y32});

  GraphBuilder b16("g16");
  const std::string x16 = b16.input("x", Shape{1, 64, 16, 16}, DType::kF16);
  const std::string y16 = b16.act(x16, "Relu");
  const Graph g16 = b16.finish({y16});

  EXPECT_DOUBLE_EQ(memory_of(g32, y32).total(), 2.0 * memory_of(g16, y16).total());
}

TEST(OpMemory, ParamsNotScaledByBatchActivationsAre) {
  // Equation 1's structure: params counted once, activations per sample.
  const auto traffic_at = [&](int64_t batch) {
    GraphBuilder b("g");
    const std::string x = b.input("x", Shape{batch, 64, 14, 14});
    const std::string y = b.conv(x, 64, 3, 1, -1, 1, false);
    const Graph g = b.finish({y});
    return memory_of(g, y);
  };
  const MemoryEstimate m1 = traffic_at(1);
  const MemoryEstimate m4 = traffic_at(4);
  EXPECT_DOUBLE_EQ(m4.param_bytes, m1.param_bytes);
  EXPECT_DOUBLE_EQ(m4.read_bytes, 4.0 * m1.read_bytes);
  EXPECT_DOUBLE_EQ(m4.write_bytes, 4.0 * m1.write_bytes);
}

TEST(OpMemory, ConstantContributesNothing) {
  GraphBuilder b("g");
  AttrMap attrs;
  attrs.set("value_shape", std::vector<int64_t>{8});
  attrs.set("dtype", std::string("fp32"));
  const std::string c = b.node("Constant", {}, std::move(attrs));
  const Graph g = b.finish({c});
  EXPECT_DOUBLE_EQ(memory_of(g, c).total(), 0.0);
}

}  // namespace
}  // namespace proof

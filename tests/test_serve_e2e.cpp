// End-to-end daemon tests over a real unix-domain socket: byte-identical
// analyze responses against the frozen goldens, concurrent clients sharing
// the process-wide caches, admission control, cooperative deadlines, graceful
// drain, and the stats ledger.  Each gtest case runs in its own process
// (gtest_discover_tests), so servers never share global singleton state with
// other cases.  Runs under TSan via scripts/check_tsan.sh.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

#ifndef PROOF_TEST_SOURCE_DIR
#error "tests/CMakeLists.txt must define PROOF_TEST_SOURCE_DIR"
#endif

namespace proof {
namespace {

std::string unique_socket_path() {
  static int counter = 0;
  std::ostringstream out;
  out << "/tmp/proof_e2e_" << ::getpid() << "_" << counter++ << ".sock";
  return out.str();
}

/// One request over a fresh connection; progress frames are collected, the
/// final result/error frame is returned last in the list.
std::vector<serve::Response> roundtrip(const net::Endpoint& endpoint,
                                       const std::string& payload) {
  net::Socket socket = net::connect(endpoint);
  serve::write_frame(socket, payload);
  std::vector<serve::Response> frames;
  while (true) {
    const std::optional<std::string> frame = serve::read_frame(socket);
    if (!frame.has_value()) {
      ADD_FAILURE() << "connection closed before a result frame";
      return frames;
    }
    frames.push_back(serve::parse_response(*frame));
    if (!frames.back().is_progress()) {
      return frames;
    }
  }
}

serve::Response call(const net::Endpoint& endpoint, const std::string& payload) {
  const std::vector<serve::Response> frames = roundtrip(endpoint, payload);
  EXPECT_FALSE(frames.empty());
  return frames.empty() ? serve::Response{} : frames.back();
}

serve::Server make_server(serve::ServerOptions options = {}) {
  options.listen = "unix:" + unique_socket_path();
  return serve::Server(std::move(options));
}

std::string analyze_request(const std::string& model_id, int64_t batch) {
  std::ostringstream out;
  out << R"({"id":3,"method":"analyze","params":{"model":)"
      << json::quote(model_id)
      << R"(,"platform":"a100","backend":"trt_sim","dtype":"fp16","mode":"predicted","batch":)"
      << batch << "}}";
  return out.str();
}

/// Same normalization the golden harness applies: zero the wall-clock fields.
std::string normalize(std::string json) {
  for (const char* key :
       {"\"analysis_time_s\":", "\"counter_profiling_time_s\":"}) {
    const size_t key_len = std::strlen(key);
    size_t pos = json.find(key);
    while (pos != std::string::npos) {
      const size_t start = pos + key_len;
      const size_t end = json.find_first_of(",}", start);
      if (end == std::string::npos) {
        break;
      }
      json.replace(start, end - start, "0");
      pos = json.find(key, start);
    }
  }
  return json;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- byte identity against the frozen goldens --------------------------------

class ServeGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(ServeGolden, AnalyzeIsByteIdenticalToSingleShotCli) {
  const std::string model_id = GetParam();
  const std::string golden = read_file(std::string(PROOF_TEST_SOURCE_DIR) +
                                       "/golden/" + model_id + ".json");
  ASSERT_FALSE(golden.empty()) << "missing golden for " << model_id;

  serve::Server server = make_server();
  server.start();
  const serve::Response response = call(
      server.endpoint(),
      analyze_request(model_id, model_id == std::string("sd_unet") ? 2 : 4));
  ASSERT_TRUE(response.is_result())
      << response.error_code << ": " << response.error_message;
  // The report travelled request -> profiler -> JSON -> frame -> raw splice;
  // after zeroing wall-clock fields it must equal the frozen golden byte for
  // byte — the daemon introduces no serialization drift.
  EXPECT_EQ(normalize(response.payload), golden);
  server.stop();
}

INSTANTIATE_TEST_SUITE_P(FourZooModels, ServeGolden,
                         ::testing::Values("resnet50", "bert_base",
                                           "shufflenetv2_10", "sd_unet"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// --- basic methods -----------------------------------------------------------

TEST(ServeE2e, PingStatsAndUnknownMethod) {
  serve::Server server = make_server();
  server.start();

  const serve::Response pong =
      call(server.endpoint(), R"({"id":1,"method":"ping"})");
  ASSERT_TRUE(pong.is_result());
  EXPECT_EQ(json::parse(pong.payload).get_int("version"), 1);

  const serve::Response stats =
      call(server.endpoint(), R"({"id":2,"method":"stats"})");
  ASSERT_TRUE(stats.is_result());
  const json::Value doc = json::parse(stats.payload);
  ASSERT_NE(doc.find("server"), nullptr);
  ASSERT_NE(doc.find("prep_cache"), nullptr);
  ASSERT_NE(doc.find("model_pool"), nullptr);

  const serve::Response missing =
      call(server.endpoint(), R"({"id":3,"method":"frobnicate"})");
  ASSERT_TRUE(missing.is_error());
  EXPECT_EQ(missing.error_code, 404);
  EXPECT_EQ(missing.error_kind, "not_found");
  server.stop();
}

TEST(ServeE2e, BadRequestsGetTypedErrorsAndConnectionSurvives) {
  serve::Server server = make_server();
  server.start();

  net::Socket socket = net::connect(server.endpoint());
  // Well-framed garbage: typed 400, connection stays usable.
  serve::write_frame(socket, "this is not json");
  std::optional<std::string> frame = serve::read_frame(socket);
  ASSERT_TRUE(frame.has_value());
  serve::Response response = serve::parse_response(*frame);
  ASSERT_TRUE(response.is_error());
  EXPECT_EQ(response.error_code, 400);

  // Unknown model and unknown platform map to 400 as well.
  serve::write_frame(
      socket,
      R"({"id":2,"method":"profile","params":{"model":"no_such_model","platform":"a100"}})");
  frame = serve::read_frame(socket);
  ASSERT_TRUE(frame.has_value());
  response = serve::parse_response(*frame);
  ASSERT_TRUE(response.is_error());
  EXPECT_EQ(response.error_code, 400);

  // Same connection still answers pings afterwards.
  serve::write_frame(socket, R"({"id":3,"method":"ping"})");
  frame = serve::read_frame(socket);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(serve::parse_response(*frame).is_result());
  server.stop();
}

// --- shared caches under concurrency -----------------------------------------

TEST(ServeE2e, ConcurrentClientsShareCachesAndAllSucceed) {
  serve::ServerOptions options;
  options.max_inflight = 16;
  serve::Server server = make_server(std::move(options));
  server.start();

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<int> ok(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      // Half profile (heavy, cache-sharing), half stats (light, never gated).
      const std::string payload =
          i % 2 == 0
              ? R"({"id":1,"method":"profile","params":{"model":"resnet50","platform":"a100","batch":4}})"
              : R"({"id":1,"method":"stats"})";
      const serve::Response response = call(server.endpoint(), payload);
      ok[i] = response.is_result() ? 1 : 0;
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(ok[i], 1) << "client " << i;
  }

  // All four profile clients shared one prepared engine: 1 miss, 3 hits.
  const serve::Response stats =
      call(server.endpoint(), R"({"id":2,"method":"stats"})");
  ASSERT_TRUE(stats.is_result());
  const json::Value doc = json::parse(stats.payload);
  const json::Value* cache = doc.find("prep_cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->get_int("engine_misses"), 1);
  EXPECT_EQ(cache->get_int("engine_hits"), 3);
  EXPECT_EQ(cache->get_int("engine_lookups"),
            cache->get_int("engine_hits") + cache->get_int("engine_misses"));
  server.stop();
}

// --- admission control --------------------------------------------------------

TEST(ServeE2e, OverloadedRequestsAreRejectedWithTyped429) {
  serve::ServerOptions options;
  options.max_inflight = 1;
  serve::Server server = make_server(std::move(options));
  server.start();

  // Client A occupies the single admission slot (debug_sleep_ms stretches the
  // request deterministically).
  net::Socket slow = net::connect(server.endpoint());
  serve::write_frame(
      slow,
      R"({"id":1,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100","debug_sleep_ms":800}})");
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // Client B is rejected immediately — admission control fails fast instead
  // of queueing behind A.
  const serve::Response rejected = call(
      server.endpoint(),
      R"({"id":2,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100"}})");
  ASSERT_TRUE(rejected.is_error());
  EXPECT_EQ(rejected.error_code, 429);
  EXPECT_EQ(rejected.error_kind, "overloaded");
  EXPECT_NE(rejected.error_message.find("max_inflight"), std::string::npos);

  // Light methods are never admission-gated: observability works while the
  // server is saturated.
  const serve::Response stats =
      call(server.endpoint(), R"({"id":3,"method":"stats"})");
  ASSERT_TRUE(stats.is_result());
  EXPECT_EQ(json::parse(stats.payload).find("server")->get_int("inflight"), 1);

  // A finishes fine; its slot frees and B's retry succeeds.
  const std::optional<std::string> frame = serve::read_frame(slow);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(serve::parse_response(*frame).is_result());
  const serve::Response retry = call(
      server.endpoint(),
      R"({"id":4,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100"}})");
  EXPECT_TRUE(retry.is_result());

  const serve::Response after =
      call(server.endpoint(), R"({"id":5,"method":"stats"})");
  EXPECT_EQ(json::parse(after.payload)
                .find("server")
                ->get_int("rejected_overloaded"),
            1);
  server.stop();
}

// --- deadlines ----------------------------------------------------------------

TEST(ServeE2e, DeadlineCancelsSweepBetweenPointsWithoutPoisoningCaches) {
  serve::Server server = make_server();
  server.start();

  // 4 points x 100 ms of injected sleep against a 150 ms deadline: the sweep
  // must die between points with a 408 after streaming at least some progress.
  const std::vector<serve::Response> frames = roundtrip(
      server.endpoint(),
      R"({"id":1,"method":"sweep","params":{"model":"shufflenetv2_10","platform":"a100","batches":[1,2,4,8],"debug_sleep_ms":100,"deadline_ms":150}})");
  ASSERT_FALSE(frames.empty());
  const serve::Response& last = frames.back();
  ASSERT_TRUE(last.is_error());
  EXPECT_EQ(last.error_code, 408);
  EXPECT_EQ(last.error_kind, "deadline_exceeded");
  EXPECT_LT(frames.size() - 1, 4u);  // progress frames: fewer than all points

  // The caches only ever publish fully built entries, so the identical sweep
  // without a deadline succeeds and reuses whatever the cancelled run built.
  const serve::Response ok = call(
      server.endpoint(),
      R"({"id":2,"method":"sweep","params":{"model":"shufflenetv2_10","platform":"a100","batches":[1,2,4,8]}})");
  ASSERT_TRUE(ok.is_result())
      << ok.error_code << ": " << ok.error_message;
  const json::Value doc = json::parse(ok.payload);
  EXPECT_EQ(doc.find("points")->array.size(), 4u);
  EXPECT_GT(doc.get_int("optimal_batch"), 0);

  const serve::Response stats =
      call(server.endpoint(), R"({"id":3,"method":"stats"})");
  EXPECT_EQ(json::parse(stats.payload)
                .find("server")
                ->get_int("deadline_exceeded"),
            1);
  server.stop();
}

// --- graceful shutdown --------------------------------------------------------

TEST(ServeE2e, ShutdownDrainsAndRejectsNewHeavyWork) {
  serve::ServerOptions options;
  options.drain_timeout_s = 5.0;
  serve::Server server = make_server(std::move(options));
  server.start();

  // Park a slow request, then ask for shutdown while it is in flight.
  net::Socket slow = net::connect(server.endpoint());
  serve::write_frame(
      slow,
      R"({"id":1,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100","debug_sleep_ms":400}})");
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  net::Socket admin = net::connect(server.endpoint());
  serve::write_frame(admin, R"({"id":2,"method":"shutdown"})");
  std::optional<std::string> frame = serve::read_frame(admin);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(serve::parse_response(*frame).is_result());

  // New heavy work on the draining server gets a typed 503 on an already
  // established connection.
  serve::write_frame(
      admin,
      R"({"id":3,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100"}})");
  frame = serve::read_frame(admin);
  ASSERT_TRUE(frame.has_value());
  const serve::Response rejected = serve::parse_response(*frame);
  ASSERT_TRUE(rejected.is_error());
  EXPECT_EQ(rejected.error_code, 503);
  EXPECT_EQ(rejected.error_kind, "shutting_down");

  // The in-flight request still completes: drain means finish, not abort.
  frame = serve::read_frame(slow);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(serve::parse_response(*frame).is_result());

  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(ServeE2e, StopIsIdempotentAndDestructorIsSafe) {
  serve::Server server = make_server();
  server.start();
  server.stop();
  server.stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}  // destructor runs on a stopped server

// --- stats ledger -------------------------------------------------------------

TEST(ServeE2e, RequestCountersReconcile) {
  serve::Server server = make_server();
  server.start();

  (void)call(server.endpoint(), R"({"id":1,"method":"ping"})");
  (void)call(server.endpoint(), R"({"id":2,"method":"nope"})");
  (void)call(
      server.endpoint(),
      R"({"id":3,"method":"profile","params":{"model":"shufflenetv2_10","platform":"a100"}})");

  // A session writes the terminal frame first and bumps the ok/error tallies
  // just after, so a client can observe its reply before the accounting
  // lands; wait for the ledger of the three finished requests to settle.
  for (int i = 0; i < 400; ++i) {
    const serve::ServerStats s = server.stats();
    if (s.requests_ok + s.requests_error >= 3) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const serve::Response stats =
      call(server.endpoint(), R"({"id":4,"method":"stats"})");
  ASSERT_TRUE(stats.is_result());
  const json::Value doc = json::parse(stats.payload);
  const json::Value* s = doc.find("server");
  ASSERT_NE(s, nullptr);
  // The stats request itself is number 4 and counts as in-progress total.
  EXPECT_EQ(s->get_int("requests_total"), 4);
  EXPECT_EQ(s->get_int("requests_ok"), 2);     // ping + profile
  EXPECT_EQ(s->get_int("requests_error"), 1);  // unknown method
  EXPECT_EQ(s->get_int("connections"), 4);
  EXPECT_EQ(s->get_int("inflight"), 0);
  server.stop();
}

}  // namespace
}  // namespace proof

// Unit tests: JSON report export (structure, escaping, numeric fields).
#include <gtest/gtest.h>

#include <fstream>

#include "core/report_json.hpp"

namespace proof {
namespace {

ProfileReport sample_report() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  return Profiler(opt).run_zoo("mobilenetv2_05");
}

TEST(ReportJson, ContainsTopLevelFields) {
  const std::string json = report_to_json(sample_report());
  for (const char* key :
       {"\"model\":", "\"platform\":", "\"latency_s\":", "\"layers\":[",
        "\"mapping_coverage\":", "\"peak_flops\":", "\"memory_bound\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  const std::string json = report_to_json(sample_report());
  int braces = 0;
  int brackets = 0;
  size_t quotes = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
      ++quotes;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0u);
  EXPECT_FALSE(in_string);
}

TEST(ReportJson, LayerCountMatchesReport) {
  const ProfileReport r = sample_report();
  const std::string json = report_to_json(r);
  size_t names = 0;
  size_t pos = 0;
  while ((pos = json.find("\"name\":", pos)) != std::string::npos) {
    ++names;
    pos += 7;
  }
  EXPECT_EQ(names, r.layers.size());
}

TEST(ReportJson, EscapesSpecialCharacters) {
  ProfileReport r = sample_report();
  r.model_name = "quote\" backslash\\ newline\n tab\t";
  const std::string json = report_to_json(r);
  EXPECT_NE(json.find("quote\\\""), std::string::npos);
  EXPECT_NE(json.find("backslash\\\\"), std::string::npos);
  EXPECT_NE(json.find("newline\\n"), std::string::npos);
  EXPECT_NE(json.find("tab\\t"), std::string::npos);
}

TEST(ReportJson, SaveToDisk) {
  const std::string path = ::testing::TempDir() + "/proof_report.json";
  save_json(report_to_json(sample_report()), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  char first = 0;
  in >> first;
  EXPECT_EQ(first, '{');
}

}  // namespace
}  // namespace proof

// Unit + property tests: the fusion pass framework used by the simulated
// runtimes.
#include <gtest/gtest.h>

#include <set>

#include "backends/fusion.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace proof::backends {
namespace {

TEST(FusionState, SingletonsInitially) {
  const Graph g = proof::testing::small_cnn();
  const FusionState state(g);
  const auto groups = state.groups();
  EXPECT_EQ(groups.size(), g.num_nodes());
}

TEST(FusionState, MergeIsTransitive) {
  const Graph g = proof::testing::small_cnn();
  FusionState state(g);
  state.merge(0, 1);
  state.merge(1, 2);
  EXPECT_TRUE(state.same_group(0, 2));
  EXPECT_EQ(state.groups().size(), g.num_nodes() - 2);
}

TEST(FusionState, SingleUseDetectsGraphOutputsAndForks) {
  const Graph g = proof::testing::small_cnn();
  const FusionState state(g);
  // Relu_0's output feeds both Conv_1 and Add (residual fork).
  const NodeId relu = g.find_node("Relu_0");
  EXPECT_FALSE(state.single_use(g.node(relu).outputs[0]));
  // Graph output tensor is never single-use.
  EXPECT_FALSE(state.single_use(g.outputs()[0]));
}

TEST(FuseConvEpilogues, ConvBnReluChainFuses) {
  const Graph g = proof::testing::small_cnn();
  FusionState state(g);
  EpilogueOptions opt;
  fuse_conv_epilogues(state, opt);
  EXPECT_TRUE(state.same_group(g.find_node("Conv_0"),
                               g.find_node("BatchNormalization_0")));
  EXPECT_TRUE(state.same_group(g.find_node("Conv_0"), g.find_node("Relu_0")));
}

TEST(FuseConvEpilogues, ResidualAddOnlyWithFlag) {
  const Graph g = proof::testing::small_cnn();
  {
    FusionState state(g);
    EpilogueOptions opt;
    opt.fuse_residual_add = false;
    fuse_conv_epilogues(state, opt);
    EXPECT_FALSE(state.same_group(g.find_node("Conv_1"), g.find_node("Add_0")));
  }
  {
    FusionState state(g);
    EpilogueOptions opt;
    opt.fuse_residual_add = true;
    fuse_conv_epilogues(state, opt);
    EXPECT_TRUE(state.same_group(g.find_node("Conv_1"), g.find_node("Add_0")));
    EXPECT_TRUE(state.same_group(g.find_node("Conv_1"), g.find_node("Relu_1")));
  }
}

TEST(FusePointwiseChains, RespectsMaxLength) {
  models::GraphBuilder b("g");
  std::string x = b.input("x", Shape{16});
  for (int i = 0; i < 6; ++i) {
    x = b.act(x, "Relu");
  }
  const Graph g = b.finish({x});
  FusionState state(g);
  fuse_pointwise_chains(state, 3);
  const auto groups = state.groups();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 3u);
  EXPECT_EQ(groups[1].size(), 3u);
}

TEST(AbsorbViewOps, ViewJoinsProducer) {
  models::GraphBuilder b("g");
  std::string x = b.input("x", Shape{1, 8, 4, 4});
  const std::string c = b.conv(x, 8, 3, 1);
  const std::string r = b.reshape(c, {1, 128});
  const Graph g = b.finish({r});
  FusionState state(g);
  absorb_view_ops(state);
  EXPECT_TRUE(state.same_group(g.producer(c), g.producer(r)));
}

TEST(AbsorbViewOps, ViewOnInputJoinsConsumer) {
  models::GraphBuilder b("g");
  std::string x = b.input("x", Shape{1, 128});
  const std::string r = b.reshape(x, {1, 8, 4, 4});
  const std::string c = b.conv(r, 8, 3, 1);
  const Graph g = b.finish({c});
  FusionState state(g);
  absorb_view_ops(state);
  EXPECT_TRUE(state.same_group(g.producer(r), g.producer(c)));
}

TEST(FuseAttentionRegions, TransformerBlocksBecomeRegions) {
  const Graph g = proof::testing::small_transformer();
  FusionState state(g);
  const auto reps = fuse_attention_regions(state, 2);
  // Two blocks, each bounded by its LayerNormalization.
  EXPECT_EQ(reps.size(), 2u);
  // Every matmul ended up inside a region.
  for (const NodeId id : g.nodes_of_type("MatMul")) {
    EXPECT_NE(state.group_of(id), id);
  }
}

TEST(FuseAttentionRegions, ConvBlocksIneligible) {
  const Graph g = proof::testing::small_cnn();
  FusionState state(g);
  const auto reps = fuse_attention_regions(state, 2);
  EXPECT_TRUE(reps.empty());
}

TEST(FuseAttentionRegions, MinMatmulsThreshold) {
  models::GraphBuilder b("g");
  std::string x = b.input("x", Shape{4, 8});
  x = b.matmul(x, b.param("w", Shape{8, 8}));
  x = b.act(x, "Relu");
  const Graph g = b.finish({x});
  FusionState state(g);
  EXPECT_TRUE(fuse_attention_regions(state, 2).empty());
  EXPECT_EQ(fuse_attention_regions(state, 1).size(), 1u);
}

TEST(OpPredicates, Classification) {
  EXPECT_TRUE(is_fusable_activation("Relu"));
  EXPECT_TRUE(is_fusable_activation("HardSwish"));
  EXPECT_FALSE(is_fusable_activation("Conv"));
  EXPECT_TRUE(is_view_op("Reshape"));
  EXPECT_FALSE(is_view_op("Transpose"));
  EXPECT_TRUE(is_pointwise_op("LayerNormalization"));
  EXPECT_FALSE(is_pointwise_op("MatMul"));
}

// Property: on every zoo model, the three passes produce a partition —
// every node in exactly one group, groups cover the graph.
class FusionPartition : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionPartition, GroupsPartitionNodes) {
  const Graph g = models::build_model(GetParam());
  FusionState state(g);
  fuse_conv_epilogues(state, EpilogueOptions{true, true, true});
  (void)fuse_attention_regions(state, 2);
  fuse_pointwise_chains(state, 8);
  absorb_view_ops(state);
  const auto groups = state.groups();
  std::set<NodeId> seen;
  for (const auto& group : groups) {
    EXPECT_FALSE(group.empty());
    for (const NodeId id : group) {
      EXPECT_TRUE(seen.insert(id).second) << "node in two groups";
    }
  }
  EXPECT_EQ(seen.size(), g.num_nodes());
  EXPECT_LT(groups.size(), g.num_nodes());  // some fusion happened
}

INSTANTIATE_TEST_SUITE_P(Zoo, FusionPartition,
                         ::testing::Values("resnet50", "mobilenetv2_10",
                                           "shufflenetv2_10", "vit_tiny",
                                           "swin_tiny", "efficientnet_b0",
                                           "mlp_mixer_b16", "distilbert"));

}  // namespace
}  // namespace proof::backends

// Unit tests: operator reference implementations + the ReferenceExecutor.
//
// These validate semantics (hand-computed cases and invariants like softmax
// normalization); the analytical model's shapes are trusted only because
// these executions agree with them.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reference_executor.hpp"
#include "models/builder.hpp"
#include "ops/op_def.hpp"
#include "support/error.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

/// Runs a single-op graph with explicit feeds and returns output values.
std::vector<float> run_single(const Graph& g, const std::string& out,
                              const std::map<std::string, Tensor>& feeds) {
  const ReferenceExecutor exec(g);
  auto values = exec.run(feeds);
  return values.at(out).values();
}

TEST(Reference, ConvHandComputed) {
  // 1x1x3x3 input, 1x1x2x2 kernel of ones, no padding, stride 1.
  Graph g("conv");
  g.set_tensor({.name = "x", .dtype = DType::kF32, .shape = Shape{1, 1, 3, 3},
                .is_param = false});
  g.add_input("x");
  g.add_param("w", DType::kF32, Shape{1, 1, 2, 2});
  Node n;
  n.name = "conv";
  n.op_type = "Conv";
  n.inputs = {"x", "w"};
  n.outputs = {"y"};
  n.attrs.set("strides", std::vector<int64_t>{1, 1});
  n.attrs.set("pads", std::vector<int64_t>{0, 0, 0, 0});
  n.attrs.set("dilations", std::vector<int64_t>{1, 1});
  n.attrs.set("group", static_cast<int64_t>(1));
  g.add_node(std::move(n));
  g.set_tensor({.name = "y", .dtype = DType::kF32, .shape = Shape{1, 1, 2, 2},
                .is_param = false});
  g.add_output("y");

  const Node& conv = g.nodes()[0];
  const OpContext ctx(g, conv);
  Tensor x(Shape{1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor w = Tensor::full(Shape{1, 1, 2, 2}, 1.0f);
  std::vector<Tensor> outs;
  outs.emplace_back(Shape{1, 1, 2, 2});
  op_def_for(conv).eval(ctx, {&x, &w}, outs);
  EXPECT_FLOAT_EQ(outs[0].at(0), 1 + 2 + 4 + 5);
  EXPECT_FLOAT_EQ(outs[0].at(1), 2 + 3 + 5 + 6);
  EXPECT_FLOAT_EQ(outs[0].at(2), 4 + 5 + 7 + 8);
  EXPECT_FLOAT_EQ(outs[0].at(3), 5 + 6 + 8 + 9);
}

TEST(Reference, DepthwiseConvKeepsChannelsSeparate) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 2, 2, 2});
  const std::string y = b.conv(x, 2, 1, 1, 0, /*groups=*/2, /*bias=*/false);
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  Tensor feed(Shape{1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
  auto values = exec.run({{"x", feed}});
  // Each output channel is input channel times its single weight.
  const Tensor& w = values.at(g.nodes()[0].inputs[1]);
  const auto& out = values.at(y);
  EXPECT_FLOAT_EQ(out.at(0), 1.0f * w.at(0));
  EXPECT_FLOAT_EQ(out.at(4), 2.0f * w.at(1));
}

TEST(Reference, MatMulHandComputed) {
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{2, 2});
  const std::string c = b.input("c", Shape{2, 2});
  const std::string y = b.matmul(a, c);
  const Graph g = b.finish({y});
  const auto out = run_single(g, y,
                              {{"a", Tensor(Shape{2, 2}, {1, 2, 3, 4})},
                               {"c", Tensor(Shape{2, 2}, {5, 6, 7, 8})}});
  EXPECT_FLOAT_EQ(out[0], 19);
  EXPECT_FLOAT_EQ(out[1], 22);
  EXPECT_FLOAT_EQ(out[2], 43);
  EXPECT_FLOAT_EQ(out[3], 50);
}

TEST(Reference, BatchedMatMulBroadcastsB) {
  GraphBuilder b("g");
  const std::string a = b.input("a", Shape{2, 1, 2});
  const std::string c = b.input("c", Shape{2, 2});
  const std::string y = b.matmul(a, c);  // [2,1,2]
  const Graph g = b.finish({y});
  const auto out = run_single(g, y,
                              {{"a", Tensor(Shape{2, 1, 2}, {1, 0, 0, 1})},
                               {"c", Tensor(Shape{2, 2}, {1, 2, 3, 4})}});
  EXPECT_FLOAT_EQ(out[0], 1);
  EXPECT_FLOAT_EQ(out[1], 2);
  EXPECT_FLOAT_EQ(out[2], 3);
  EXPECT_FLOAT_EQ(out[3], 4);
}

TEST(Reference, GemmTransBAndBias) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 3});
  const std::string y = b.linear(x, 2);  // Gemm transB with bias
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  auto values = exec.run({{"x", Tensor(Shape{1, 3}, {1, 2, 3})}});
  const Node& gemm = g.nodes()[0];
  const Tensor& w = values.at(gemm.inputs[1]);   // [2,3]
  const Tensor& bias = values.at(gemm.inputs[2]);
  const auto& out = values.at(y);
  for (int j = 0; j < 2; ++j) {
    const float expected =
        1 * w.at(j * 3) + 2 * w.at(j * 3 + 1) + 3 * w.at(j * 3 + 2) + bias.at(j);
    EXPECT_NEAR(out.at(j), expected, 1e-5);
  }
}

TEST(Reference, SoftmaxRowsSumToOne) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4, 16});
  const std::string y = b.softmax(x);
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  const auto values = exec.run_random();
  const Tensor& out = values.at(y);
  for (int row = 0; row < 4; ++row) {
    double sum = 0.0;
    for (int i = 0; i < 16; ++i) {
      const float v = out.at(row * 16 + i);
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Reference, LayerNormZeroMeanUnitVar) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 64});
  // LayerNorm with scale/bias params; verify statistics pre-affine by
  // checking against a manual recompute.
  const std::string y = b.layernorm(x);
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  auto values = exec.run_random();
  const Node& ln = g.nodes()[0];
  const Tensor& scale = values.at(ln.inputs[1]);
  const Tensor& bias = values.at(ln.inputs[2]);
  const Tensor& in = values.at("x");
  const Tensor& out = values.at(y);
  for (int row = 0; row < 2; ++row) {
    double mean = 0.0;
    for (int i = 0; i < 64; ++i) mean += in.at(row * 64 + i);
    mean /= 64.0;
    double var = 0.0;
    for (int i = 0; i < 64; ++i) {
      const double d = in.at(row * 64 + i) - mean;
      var += d * d;
    }
    var /= 64.0;
    for (int i = 0; i < 16; ++i) {
      const double norm = (in.at(row * 64 + i) - mean) / std::sqrt(var + 1e-5);
      EXPECT_NEAR(out.at(row * 64 + i), norm * scale.at(i) + bias.at(i), 1e-4);
    }
  }
}

TEST(Reference, TransposeRoundTrip) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 3, 4});
  const std::string t1 = b.transpose(x, {1, 0, 2});
  const std::string t2 = b.transpose(t1, {1, 0, 2});
  const Graph g = b.finish({t2});
  const ReferenceExecutor exec(g);
  auto values = exec.run_random();
  EXPECT_EQ(values.at(x).values(), values.at(t2).values());
}

TEST(Reference, ConcatThenSplitIsIdentityLike) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 2, 4});
  const std::string y = b.input("y", Shape{1, 2, 4});
  const std::string c = b.concat({x, y}, 1);
  const Graph g = b.finish({c});
  const ReferenceExecutor exec(g);
  Tensor tx(Shape{1, 2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor ty(Shape{1, 2, 4}, {8, 9, 10, 11, 12, 13, 14, 15});
  auto values = exec.run({{"x", tx}, {"y", ty}});
  const Tensor& out = values.at(c);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(out.at(i), static_cast<float>(i));
  }
}

TEST(Reference, MaxPoolPicksWindowMax) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 1, 2, 2});
  const std::string y = b.maxpool(x, 2, 2, 0);
  const Graph g = b.finish({y});
  const auto out = run_single(g, y, {{"x", Tensor(Shape{1, 1, 2, 2}, {3, 1, 4, 2})}});
  EXPECT_FLOAT_EQ(out[0], 4.0f);
}

TEST(Reference, GlobalAveragePoolAverages) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 2, 2, 2});
  const std::string y = b.global_avgpool(x);
  const Graph g = b.finish({y});
  const auto out =
      run_single(g, y, {{"x", Tensor(Shape{1, 2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10})}});
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
}

TEST(Reference, ActivationValues) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4});
  const std::string relu = b.act(x, "Relu");
  const std::string sig = b.act(x, "Sigmoid");
  const std::string hsw = b.act(x, "HardSwish");
  const Graph g = b.finish({relu, sig, hsw});
  const ReferenceExecutor exec(g);
  auto values = exec.run({{"x", Tensor(Shape{4}, {-2, -0.5, 0.5, 2})}});
  EXPECT_FLOAT_EQ(values.at(relu).at(0), 0.0f);
  EXPECT_FLOAT_EQ(values.at(relu).at(3), 2.0f);
  EXPECT_NEAR(values.at(sig).at(3), 1.0 / (1.0 + std::exp(-2.0)), 1e-6);
  EXPECT_NEAR(values.at(hsw).at(3), 2.0 * 5.0 / 6.0, 1e-6);
}

TEST(Reference, WholeSmallCnnRuns) {
  GraphBuilder b("g");
  std::string x = b.input("x", Shape{2, 3, 8, 8});
  x = b.conv(x, 4, 3, 1);
  x = b.act(x, "Relu");
  x = b.global_avgpool(x);
  x = b.flatten(x);
  x = b.linear(x, 10);
  const std::string y = b.softmax(x);
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  EXPECT_TRUE(exec.fully_supported());
  const auto values = exec.run_random();
  EXPECT_EQ(values.at(y).shape(), (Shape{2, 10}));
}

TEST(Reference, MissingFeedThrows) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{4});
  const std::string y = b.act(x, "Relu");
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  EXPECT_THROW((void)exec.run({}), Error);
}

TEST(Reference, UnimplementedOpReportsCleanly) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 4, 4, 4});
  const std::string y = b.groupnorm(x, 2);  // no reference implementation
  const Graph g = b.finish({y});
  const ReferenceExecutor exec(g);
  EXPECT_FALSE(exec.fully_supported());
  EXPECT_THROW((void)exec.run_random(), Error);
}

}  // namespace
}  // namespace proof

// Unit tests: the work-stealing thread pool (support/thread_pool.hpp) —
// serial degradation, ordering, exception propagation, nested submission.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace proof {
namespace {

TEST(ThreadPool, SerialPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  EXPECT_EQ(pool.worker_count(), 0u);
  bool ran = false;
  auto future = pool.submit([&] {
    ran = true;
    return 42;
  });
  // Serial pools execute at submit time.
  EXPECT_TRUE(ran);
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ZeroJobsClampsToSerial) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.jobs(), 1u);
  EXPECT_EQ(pool.worker_count(), 0u);
  std::vector<int> order;
  pool.parallel_for(4, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 3u);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroAndOneIterations) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapKeepsSlotOrder) {
  ThreadPool pool(4);
  const std::vector<int> out =
      pool.parallel_map(100, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  for (const unsigned jobs : {1u, 4u}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](size_t i) {
                            if (i == 13) {
                              throw std::runtime_error("boom at 13");
                            }
                          }),
        std::runtime_error)
        << "jobs=" << jobs;
    // The pool survives the failed loop and keeps working.
    std::atomic<int> done{0};
    pool.parallel_for(8, [&](size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 8);
  }
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::logic_error("task failed"); });
  EXPECT_THROW((void)pool.wait(future), std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](size_t) {
    pool.parallel_for(8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, NestedSubmitWithWaitCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 7; });
    return pool.wait(inner) + 1;
  });
  EXPECT_EQ(pool.wait(outer), 8);
}

TEST(ThreadPool, DefaultJobsReadsEnvironment) {
  const char* saved = std::getenv("PROOF_JOBS");
  const std::string saved_value = saved != nullptr ? saved : "";

  ::setenv("PROOF_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 3u);
  ::setenv("PROOF_JOBS", "0", 1);
  EXPECT_EQ(ThreadPool::default_jobs(), 1u);  // clamped to >= 1
  ::setenv("PROOF_JOBS", "not-a-number", 1);
  EXPECT_THROW((void)ThreadPool::default_jobs(), ConfigError);

  if (saved != nullptr) {
    ::setenv("PROOF_JOBS", saved_value.c_str(), 1);
  } else {
    ::unsetenv("PROOF_JOBS");
  }
  EXPECT_GE(ThreadPool::default_jobs(), 1u);
}

TEST(ThreadPool, SetGlobalJobsReplacesThePool) {
  ThreadPool::set_global_jobs(2);
  EXPECT_EQ(ThreadPool::global().jobs(), 2u);
  ThreadPool::set_global_jobs(1);
  EXPECT_EQ(ThreadPool::global().jobs(), 1u);
  ThreadPool::set_global_jobs(0);  // back to the default
  EXPECT_EQ(ThreadPool::global().jobs(), ThreadPool::default_jobs());
}

}  // namespace
}  // namespace proof

// Unit tests: roofline math, ceilings, aggregation, achieved-peak probe.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "roofline/peak_test.hpp"
#include "roofline/roofline.hpp"

namespace proof::roofline {
namespace {

TEST(Point, DerivedQuantities) {
  Point p;
  p.flops = 2e9;
  p.bytes = 1e8;
  p.latency_s = 1e-3;
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 20.0);
  EXPECT_DOUBLE_EQ(p.attained_flops(), 2e12);
  EXPECT_DOUBLE_EQ(p.attained_bandwidth(), 1e11);
}

TEST(Point, ZeroGuards) {
  const Point p;
  EXPECT_DOUBLE_EQ(p.arithmetic_intensity(), 0.0);
  EXPECT_DOUBLE_EQ(p.attained_flops(), 0.0);
  EXPECT_DOUBLE_EQ(p.attained_bandwidth(), 0.0);
}

TEST(Ceilings, RidgeAndAttainable) {
  Ceilings c;
  c.peak_flops = 312e12;
  c.peak_bw = 1555e9;
  EXPECT_NEAR(c.ridge_ai(), 200.6, 0.1);
  // Left of the ridge: bandwidth-limited.
  EXPECT_DOUBLE_EQ(c.attainable(10.0), 10.0 * 1555e9);
  // Right of the ridge: compute-limited.
  EXPECT_DOUBLE_EQ(c.attainable(1000.0), 312e12);
}

TEST(Ceilings, BoundClassification) {
  Ceilings c;
  c.peak_flops = 100e12;
  c.peak_bw = 1e12;  // ridge at AI=100
  Point low;
  low.flops = 10;
  low.bytes = 1;  // AI 10
  Point high;
  high.flops = 1000;
  high.bytes = 1;  // AI 1000
  EXPECT_TRUE(c.memory_bound(low));
  EXPECT_FALSE(c.memory_bound(high));
}

TEST(Aggregate, SumsAndShares) {
  std::vector<Point> layers(3);
  for (int i = 0; i < 3; ++i) {
    layers[i].flops = 1e9;
    layers[i].bytes = 1e6;
    layers[i].latency_s = (i + 1) * 1e-3;
  }
  const Point total = aggregate(layers, "model");
  EXPECT_DOUBLE_EQ(total.flops, 3e9);
  EXPECT_DOUBLE_EQ(total.latency_s, 6e-3);
  EXPECT_NEAR(layers[0].latency_share, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(layers[2].latency_share, 3.0 / 6.0, 1e-12);
  double share = 0.0;
  for (const Point& p : layers) {
    share += p.latency_share;
  }
  EXPECT_NEAR(share, 1.0, 1e-12);
}

TEST(Analysis, EfficiencyAgainstRoofline) {
  Analysis a;
  a.ceilings.peak_flops = 100e12;
  a.ceilings.peak_bw = 1e12;
  a.end_to_end.flops = 1e9;
  a.end_to_end.bytes = 1e6;  // AI = 1000 -> compute region
  a.end_to_end.latency_s = 2e-5;  // attained 50e12 of 100e12
  EXPECT_NEAR(a.roofline_efficiency(), 0.5, 1e-9);
}

TEST(PeakProbe, ReachesAchievablePeaks) {
  // Build the pseudo model on the Orin and verify the probe lands near the
  // platform's achievable compute/bandwidth limits (Table 6 row 1).
  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 1;
  const backends::Engine engine =
      backends::BackendRegistry::instance().get("trt_sim").build(
          models::build_peak_probe(), config, orin);
  const hw::PlatformState state(orin);
  const AchievedPeaks peaks = achieved_peaks(engine, state);
  const hw::LatencyModel model(state);
  EXPECT_GT(peaks.flops, 0.85 * model.achieved_compute_peak(DType::kF16));
  EXPECT_LE(peaks.flops, 1.01 * model.achieved_compute_peak(DType::kF16));
  EXPECT_GT(peaks.bw, 0.85 * model.achieved_bandwidth());
  EXPECT_LE(peaks.bw, 1.01 * model.achieved_bandwidth());
}

TEST(PeakProbe, PeaksScaleWithClocks) {
  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  const backends::Engine engine =
      backends::BackendRegistry::instance().get("trt_sim").build(
          models::build_peak_probe(), config, orin);
  hw::ClockSetting slow;
  slow.gpu_mhz = 510.0;
  slow.mem_mhz = 2133.0;
  const AchievedPeaks full = achieved_peaks(engine, hw::PlatformState(orin));
  const AchievedPeaks low =
      achieved_peaks(engine, hw::PlatformState(orin, slow));
  EXPECT_LT(low.flops, full.flops);
  EXPECT_LT(low.bw, full.bw);
}

}  // namespace
}  // namespace proof::roofline

// Unit + property tests: text serialization round-trips.
#include <gtest/gtest.h>

#include "graph/serialize.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

void expect_graph_equal(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.inputs(), b.inputs());
  EXPECT_EQ(a.outputs(), b.outputs());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    const Node& na = a.nodes()[i];
    const Node& nb = b.nodes()[i];
    EXPECT_EQ(na.name, nb.name);
    EXPECT_EQ(na.op_type, nb.op_type);
    EXPECT_EQ(na.inputs, nb.inputs);
    EXPECT_EQ(na.outputs, nb.outputs);
    EXPECT_EQ(na.attrs.raw().size(), nb.attrs.raw().size());
  }
  ASSERT_EQ(a.tensors().size(), b.tensors().size());
  for (const auto& [name, desc] : a.tensors()) {
    ASSERT_TRUE(b.has_tensor(name));
    EXPECT_EQ(b.tensor(name).dtype, desc.dtype);
    EXPECT_EQ(b.tensor(name).shape, desc.shape);
    EXPECT_EQ(b.tensor(name).is_param, desc.is_param);
  }
}

TEST(Serialize, SmallCnnRoundTrips) {
  const Graph g = proof::testing::small_cnn();
  const Graph back = graph_from_text(graph_to_text(g));
  expect_graph_equal(g, back);
  EXPECT_NO_THROW(back.validate());
}

TEST(Serialize, AttributeTypesRoundTrip) {
  Graph g("attrs");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{4}, .is_param = false});
  g.add_input("in");
  Node n;
  n.name = "n0";
  n.op_type = "Relu";
  n.inputs = {"in"};
  n.outputs = {"out"};
  n.attrs.set("i", static_cast<int64_t>(-42));
  n.attrs.set("f", 0.125);
  n.attrs.set("s", std::string("hello"));
  n.attrs.set("is", std::vector<int64_t>{1, -2, 3});
  n.attrs.set("fs", std::vector<double>{1.5, 2.0, 2.0});
  g.add_node(std::move(n));
  g.add_output("out");

  const Graph back = graph_from_text(graph_to_text(g));
  const Node& nb = back.nodes()[0];
  EXPECT_EQ(nb.attrs.get_int("i"), -42);
  EXPECT_DOUBLE_EQ(nb.attrs.get_float("f"), 0.125);
  EXPECT_EQ(nb.attrs.get_string("s"), "hello");
  EXPECT_EQ(nb.attrs.get_ints("is"), (std::vector<int64_t>{1, -2, 3}));
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW((void)graph_from_text("bogus record"), ModelError);
  EXPECT_THROW((void)graph_from_text("tensor t fp32 [2,) var"), ModelError);
  EXPECT_THROW((void)graph_from_text("node n Relu in=x out=y attr=q:1"), ModelError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Graph g = graph_from_text("# comment\n\ngraph g\n");
  EXPECT_EQ(g.name(), "g");
  EXPECT_EQ(g.num_nodes(), 0u);
}

TEST(Serialize, FileRoundTrip) {
  const Graph g = proof::testing::small_transformer();
  const std::string path = ::testing::TempDir() + "/proof_roundtrip.pg";
  save_graph(g, path);
  const Graph back = load_graph(path);
  expect_graph_equal(g, back);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW((void)load_graph("/nonexistent/path.pg"), ModelError);
}

// Property: every zoo model round-trips bit-exactly through the text format.
class ZooRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooRoundTrip, RoundTripsExactly) {
  const Graph g = models::build_model(GetParam());
  const std::string text = graph_to_text(g);
  const Graph back = graph_from_text(text);
  expect_graph_equal(g, back);
  // Idempotence: serializing the parsed graph reproduces the same text.
  EXPECT_EQ(graph_to_text(back), text);
}

INSTANTIATE_TEST_SUITE_P(Models, ZooRoundTrip,
                         ::testing::Values("resnet34", "mobilenetv2_10",
                                           "shufflenetv2_10", "vit_tiny",
                                           "efficientnet_b0", "distilbert"));

}  // namespace
}  // namespace proof

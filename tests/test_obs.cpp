// Unit tests: the observability layer (obs/) — sharded counters under the
// thread pool, histogram bucketing/quantiles, RAII spans, the runtime
// disable switch, and the self-profile JSON export.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/self_profile.hpp"
#include "obs/span.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace proof::obs {
namespace {

/// Restores the runtime switch and scrubs test-local state on scope exit.
class ObsSandbox {
 public:
  ObsSandbox() : was_enabled_(enabled()) {
    set_enabled(true);
    MetricsRegistry::instance().reset();
    clear_trace();
  }
  ~ObsSandbox() {
    MetricsRegistry::instance().reset();
    clear_trace();
    set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

TEST(Obs, CounterAggregatesAcrossPoolWorkers) {
  ObsSandbox sandbox;
  Counter& c = MetricsRegistry::instance().counter("test.pool_counter");
  ThreadPool pool(8);
  constexpr size_t kN = 10000;
  pool.parallel_for(kN, [&](size_t) { c.add(1); });
  EXPECT_EQ(c.value(), kN);
  c.add(5);
  EXPECT_EQ(c.value(), kN + 5);
}

TEST(Obs, RegistryReturnsStableReferences) {
  ObsSandbox sandbox;
  Counter& a = MetricsRegistry::instance().counter("test.stable");
  Counter& b = MetricsRegistry::instance().counter("test.stable");
  EXPECT_EQ(&a, &b);
  // Same name as a different kind must be rejected.
  EXPECT_THROW((void)MetricsRegistry::instance().gauge("test.stable"),
               Error);
}

TEST(Obs, HistogramBucketsAndQuantiles) {
  ObsSandbox sandbox;
  Histogram& h = MetricsRegistry::instance().histogram("test.hist");
  // 1000 observations of 10 us and one of 50 ms.
  for (int i = 0; i < 1000; ++i) {
    h.observe_ns(10'000);
  }
  h.observe_ns(50'000'000);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1001u);
  EXPECT_EQ(snap.max_ns, 50'000'000u);
  EXPECT_DOUBLE_EQ(static_cast<double>(snap.sum_ns),
                   1000.0 * 10'000 + 50'000'000);
  // p50 lands in the 10 us bucket, p999+ reaches the outlier's bucket.
  EXPECT_LT(snap.quantile_s(0.5), 20e-6);
  EXPECT_GT(snap.quantile_s(0.9999), 1e-3);
  EXPECT_GT(snap.mean_s(), 0.0);
}

TEST(Obs, HistogramConcurrentObserversLoseNothing) {
  ObsSandbox sandbox;
  Histogram& h = MetricsRegistry::instance().histogram("test.hist_mt");
  ThreadPool pool(8);
  constexpr size_t kN = 20000;
  pool.parallel_for(kN, [&](size_t i) { h.observe_ns(1000 * (i % 64 + 1)); });
  EXPECT_EQ(h.snapshot().count, kN);
}

TEST(Obs, SpanRecordsHistogramAndTraceEvent) {
  ObsSandbox sandbox;
  {
    PROOF_SPAN("test.span");
  }
  {
    PROOF_SPAN("test.span");
  }
#ifndef PROOF_OBS_DISABLED
  const HistogramSnapshot snap =
      MetricsRegistry::instance().histogram("test.span").snapshot();
  EXPECT_EQ(snap.count, 2u);
  const std::vector<TraceEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "test.span");
  EXPECT_GT(events[0].tid, 0u);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
#endif
}

TEST(Obs, DisabledSpansAndCountersAreInert) {
  ObsSandbox sandbox;
  set_enabled(false);
  {
    PROOF_SPAN("test.disabled_span");
    PROOF_COUNT("test.disabled_count", 3);
  }
  set_enabled(true);
  EXPECT_TRUE(trace_events().empty());
#ifndef PROOF_OBS_DISABLED
  EXPECT_EQ(MetricsRegistry::instance()
                .histogram("test.disabled_span")
                .snapshot()
                .count,
            0u);
  EXPECT_EQ(MetricsRegistry::instance().counter("test.disabled_count").value(),
            0u);
#endif
}

TEST(Obs, SpansOnPoolWorkersGetDistinctTracks) {
  ObsSandbox sandbox;
  ThreadPool pool(4);
  pool.parallel_for(64, [&](size_t) {
    PROOF_SPAN("test.worker_span");
  });
#ifndef PROOF_OBS_DISABLED
  const std::vector<TraceEvent> events = trace_events();
  EXPECT_EQ(events.size(), 64u);
  for (const TraceEvent& e : events) {
    EXPECT_GT(e.tid, 0u);
  }
#endif
}

TEST(Obs, SelfProfileJsonIsWellFormed) {
  ObsSandbox sandbox;
  MetricsRegistry::instance().counter("test.json_counter").add(7);
  MetricsRegistry::instance().gauge("test.json_gauge").set(2.5);
  {
    PROOF_SPAN("test.json_span");
  }
  const std::string json = self_profile_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
  EXPECT_NE(json.find("\"trace_events\":"), std::string::npos);

  const std::string text = self_profile_text();
  EXPECT_NE(text.find("test.json_counter"), std::string::npos);
}

TEST(Obs, ResetZeroesValuesButKeepsRegistrations) {
  ObsSandbox sandbox;
  Counter& c = MetricsRegistry::instance().counter("test.reset");
  c.add(9);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the cached reference is still live
  EXPECT_EQ(c.value(), 2u);
}

TEST(Obs, TraceBufferRespectsCap) {
  ObsSandbox sandbox;
  // The cap is process-wide state; just confirm clear_trace() resets both
  // the buffer and the dropped counter bookkeeping.
  {
    PROOF_SPAN("test.cap_span");
  }
  clear_trace();
  EXPECT_TRUE(trace_events().empty());
  EXPECT_EQ(trace_dropped(), 0u);
}

}  // namespace
}  // namespace proof::obs

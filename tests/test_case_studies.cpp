// Integration tests: the paper's two case studies reproduce qualitatively.
//
// §4.5 — the modified ShuffleNetV2 out-throughputs the original on the A100
//        despite more FLOP, because Shuffle's Transpose/copy layers vanish.
// §4.6 — on the Orin NX, dropping EMC 3199 -> 2133 costs little performance,
//        2133 -> 665 is catastrophic; GPU 612 / EMC 2133 fits a 15 W budget.
#include <gtest/gtest.h>

#include "core/profiler.hpp"

namespace proof {
namespace {

ProfileReport run(const std::string& model, const std::string& platform,
                  int64_t batch, hw::ClockSetting clocks = {}) {
  ProfileOptions opt;
  opt.platform_id = platform;
  opt.dtype = DType::kF16;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  opt.clocks = std::move(clocks);
  return Profiler(opt).run_zoo(model);
}

TEST(CaseStudyShuffleNet, ModifiedIsFasterAtEveryBatch) {
  // Table 5: speedups 1.39x / 1.49x / 1.64x at batch 1 / 128 / 2048.
  for (const int64_t batch : {1, 128, 2048}) {
    const double orig = run("shufflenetv2_10", "a100", batch).total_latency_s;
    const double mod = run("shufflenetv2_10_mod", "a100", batch).total_latency_s;
    const double speedup = orig / mod;
    EXPECT_GT(speedup, 1.15) << "batch " << batch;
    EXPECT_LT(speedup, 2.2) << "batch " << batch;
  }
}

TEST(CaseStudyShuffleNet, SpeedupGrowsWithBatch) {
  const double s1 = run("shufflenetv2_10", "a100", 1).total_latency_s /
                    run("shufflenetv2_10_mod", "a100", 1).total_latency_s;
  const double s2048 = run("shufflenetv2_10", "a100", 2048).total_latency_s /
                       run("shufflenetv2_10_mod", "a100", 2048).total_latency_s;
  EXPECT_GT(s2048, s1);
}

TEST(CaseStudyShuffleNet, TransposeAndCopyDominateOriginal) {
  // Figure 6(a): Transpose (shuffle) + data-copy layers take the majority of
  // the original model's time; Figure 6(b): far less in the modified model.
  const auto share_of_movement = [](const ProfileReport& r) {
    double movement = 0.0;
    for (const LayerReport& layer : r.layers) {
      if (layer.cls == OpClass::kDataMovement || layer.cls == OpClass::kCopy) {
        movement += layer.latency_s;
      }
    }
    return movement / r.total_latency_s;
  };
  const double orig = share_of_movement(run("shufflenetv2_10", "a100", 2048));
  const double mod = share_of_movement(run("shufflenetv2_10_mod", "a100", 2048));
  EXPECT_GT(orig, 0.35);  // paper: conv layers only ~40 % of latency
  EXPECT_LT(mod, orig / 2.0);
}

TEST(CaseStudyShuffleNet, ModifiedHasHigherFlopYetHigherThroughput) {
  const ProfileReport orig = run("shufflenetv2_10", "a100", 2048);
  const ProfileReport mod = run("shufflenetv2_10_mod", "a100", 2048);
  EXPECT_GT(mod.roofline.end_to_end.flops, orig.roofline.end_to_end.flops);
  EXPECT_GT(mod.throughput_per_s(), orig.throughput_per_s());
  // Both models sit under the memory roof (the trade-off's precondition).
  EXPECT_TRUE(orig.roofline.ceilings.memory_bound(orig.roofline.end_to_end));
}

hw::ClockSetting orin_clocks(double gpu, double mem) {
  hw::ClockSetting c;
  c.gpu_mhz = gpu;
  c.mem_mhz = mem;
  c.cpu_cluster_mhz = {729.0, 0.0};
  return c;
}

TEST(CaseStudyOrinPower, MemoryClockKneeBehaviour) {
  // Figure 8: EMC 3199 -> 2133 costs only a little latency; 2133 -> 665 is
  // disastrous (most layers sit above the 15.2 GB/s line).
  const double full =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(918, 3199))
          .total_latency_s;
  const double mid =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(918, 2133))
          .total_latency_s;
  const double low =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(918, 665))
          .total_latency_s;
  EXPECT_LT(mid / full, 1.25);   // paper: 211.3 -> 232.7 ms (+10 %)
  EXPECT_GT(low / full, 1.9);    // paper: 211.3 -> 568.0 ms (+169 %)
}

TEST(CaseStudyOrinPower, OptimalProfileBeatsStockWithinBudget) {
  // Table 7: within 15 W, GPU 612 / EMC 2133 ("ours") beats the stock "15W"
  // (GPU 612 / EMC 3199 costs more power) and GPU 510 / EMC 3199 profiles.
  const ProfileReport ours =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(612, 2133));
  EXPECT_LT(ours.power_w, 15.0);

  const ProfileReport p7 =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(612, 3199));
  const ProfileReport p9 =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(510, 3199));
  // Alternatives inside the budget are slower than ours.
  if (p9.power_w < 15.0) {
    EXPECT_GT(p9.total_latency_s, ours.total_latency_s);
  }
  // #7 (612/3199) exceeds the budget, as Table 7 reports (16.6 W).
  EXPECT_GT(p7.power_w, 15.0);
}

TEST(CaseStudyOrinPower, DepthwiseAndPointwiseDominateEffNetV2T) {
  // Figure 8's narrative: conv layers take ~70 % of EfficientNetV2-T latency.
  const ProfileReport r =
      run("efficientnetv2_t", "orin_nx16", 128, orin_clocks(918, 3199));
  double conv_time = 0.0;
  for (const LayerReport& layer : r.layers) {
    if (layer.cls == OpClass::kConv || layer.cls == OpClass::kConvPointwise ||
        layer.cls == OpClass::kConvDepthwise) {
      conv_time += layer.latency_s;
    }
  }
  EXPECT_GT(conv_time / r.total_latency_s, 0.5);
}

}  // namespace
}  // namespace proof

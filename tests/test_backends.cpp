// Unit + integration tests: the simulated inference runtimes.
#include <gtest/gtest.h>

#include <set>

#include "backends/backend.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof::backends {
namespace {

const hw::PlatformDesc& a100() {
  return hw::PlatformRegistry::instance().get("a100");
}
const hw::PlatformDesc& xeon() {
  return hw::PlatformRegistry::instance().get("xeon6330");
}

TEST(BackendRegistry, ListsAllThreeRuntimes) {
  auto& reg = BackendRegistry::instance();
  for (const char* id : {"trt_sim", "ov_sim", "ort_sim"}) {
    EXPECT_TRUE(reg.contains(id)) << id;
  }
  EXPECT_THROW((void)reg.get("tensorrt"), ConfigError);
}

TEST(Backend, UnsupportedDtypeRejected) {
  const Graph model = proof::testing::small_cnn();
  BuildConfig config;
  config.dtype = DType::kBF16;  // Orin's table lacks bf16
  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");
  EXPECT_THROW((void)BackendRegistry::instance().get("trt_sim").build(model, config, orin),
               ConfigError);
}

TEST(Backend, EngineAppliesBatchAndDtype) {
  const Graph model = proof::testing::small_cnn();
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 32;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  const Graph& g = engine.analysis_graph();
  EXPECT_EQ(g.tensor(g.inputs()[0]).shape.dim(0), 32);
  EXPECT_EQ(g.tensor(g.inputs()[0]).dtype, DType::kF16);
}

// Shared structural invariants for every (backend, model) combination.
struct BuildCase {
  std::string backend;
  std::string model;
};

class EngineInvariants : public ::testing::TestWithParam<BuildCase> {};

TEST_P(EngineInvariants, LayersPartitionModelNodes) {
  const auto& [backend_id, model_id] = GetParam();
  const Graph model = models::build_model(model_id);
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 4;
  const Engine engine =
      BackendRegistry::instance().get(backend_id).build(model, config, a100());

  EXPECT_FALSE(engine.layers().empty());
  std::set<std::string> claimed;
  size_t reorders = 0;
  for (const BackendLayer& layer : engine.layers()) {
    if (layer.is_reorder) {
      ++reorders;
      EXPECT_TRUE(layer.truth_nodes.empty());
      continue;
    }
    EXPECT_FALSE(layer.kernels.empty()) << layer.name;
    for (const std::string& node : layer.truth_nodes) {
      EXPECT_TRUE(claimed.insert(node).second)
          << "node '" << node << "' in two layers";
    }
  }
  // Every model node is implemented by exactly one layer.
  EXPECT_EQ(claimed.size(), model.num_nodes());
  // Kernel workloads are sane.
  for (const hw::KernelWork& k : engine.all_kernels()) {
    EXPECT_GE(k.hw_flops, 0.0);
    EXPECT_GE(k.bytes, 0.0);
    EXPECT_GE(k.matrix_flops, 0.0);
    EXPECT_LE(k.matrix_flops, k.hw_flops * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineInvariants,
    ::testing::Values(BuildCase{"trt_sim", "resnet50"},
                      BuildCase{"trt_sim", "vit_tiny"},
                      BuildCase{"trt_sim", "shufflenetv2_10"},
                      BuildCase{"trt_sim", "efficientnet_b0"},
                      BuildCase{"ov_sim", "resnet50"},
                      BuildCase{"ov_sim", "mobilenetv2_10"},
                      BuildCase{"ov_sim", "vit_tiny"},
                      BuildCase{"ort_sim", "resnet50"},
                      BuildCase{"ort_sim", "shufflenetv2_10"},
                      BuildCase{"ort_sim", "distilbert"}));

TEST(TrtSim, TransformerProducesOpaqueRegions) {
  const Graph model = models::build_model("vit_tiny");
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 1;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  size_t opaque = 0;
  for (const BackendLayer& layer : engine.layers()) {
    if (layer.is_opaque) {
      ++opaque;
      EXPECT_TRUE(layer.info.empty());  // Myelin exposes no mapping info
      EXPECT_NE(layer.name.find("ForeignNode"), std::string::npos);
      EXPECT_GE(layer.kernels.size(), 2u);  // split at GEMM anchors
    }
  }
  // ViT: ~2 regions per block.
  EXPECT_GE(opaque, 12u);
}

TEST(TrtSim, CnnLayersCarryNameInfo) {
  const Graph model = models::build_model("resnet50");
  BuildConfig config;
  config.dtype = DType::kF16;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  for (const BackendLayer& layer : engine.layers()) {
    if (!layer.is_reorder && !layer.is_opaque && layer.truth_nodes.size() > 1) {
      EXPECT_NE(layer.info.find(" + "), std::string::npos) << layer.name;
    }
  }
}

TEST(OvSim, ExposesOriginalLayersNames) {
  const Graph model = models::build_model("resnet50");
  BuildConfig config;
  config.dtype = DType::kF16;
  const Engine engine =
      BackendRegistry::instance().get("ov_sim").build(model, config, a100());
  for (const BackendLayer& layer : engine.layers()) {
    if (!layer.is_reorder) {
      EXPECT_FALSE(layer.info.empty()) << layer.name;
    }
  }
}

TEST(OrtSim, InsertsRenamingReorders) {
  const Graph model = proof::testing::small_cnn();
  BuildConfig config;
  config.dtype = DType::kF32;
  const Engine engine =
      BackendRegistry::instance().get("ort_sim").build(model, config, xeon());
  bool found_reorder = false;
  for (const BackendLayer& layer : engine.layers()) {
    if (layer.is_reorder) {
      found_reorder = true;
      ASSERT_EQ(layer.input_tensors.size(), 1u);
      ASSERT_EQ(layer.output_tensors.size(), 1u);
      EXPECT_NE(layer.input_tensors[0], layer.output_tensors[0]);
    }
  }
  EXPECT_TRUE(found_reorder);
  // Fused conv layers expose no name info (Figure 2's fused_op_N situation).
  for (const BackendLayer& layer : engine.layers()) {
    if (!layer.is_reorder && layer.truth_nodes.size() > 1) {
      EXPECT_TRUE(layer.info.empty());
      EXPECT_NE(layer.name.find("fused_op_"), std::string::npos);
    }
  }
}

TEST(Engine, ProfileIsDeterministic) {
  const Graph model = proof::testing::small_cnn();
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 8;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  const hw::PlatformState state(a100());
  const EngineProfile p1 = engine.profile(state, 50);
  const EngineProfile p2 = engine.profile(state, 50);
  ASSERT_EQ(p1.layer_latency_s.size(), p2.layer_latency_s.size());
  for (size_t i = 0; i < p1.layer_latency_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.layer_latency_s[i], p2.layer_latency_s[i]);
  }
}

TEST(Engine, MoreIterationsLessJitter) {
  const Graph model = proof::testing::small_cnn();
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 8;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  const hw::PlatformState state(a100());
  // Noise-free expectation: layer latencies from the latency model directly.
  const hw::LatencyModel lm(state);
  double ideal = 0.0;
  for (const hw::KernelWork& k : engine.all_kernels()) {
    ideal += lm.time_kernel(k).latency_s;
  }
  const double e10 = std::abs(engine.profile(state, 10).total_latency_s - ideal);
  const double e1000 = std::abs(engine.profile(state, 1000).total_latency_s - ideal);
  EXPECT_LE(e1000, e10 + 1e-12);
}

TEST(Backend, NpuOpSupportMatrix) {
  // Paper §4.3: only part of the zoo converts on the NPU.  SiLU-based
  // EfficientNets are rejected; plain CNNs convert fine.
  const auto& npu = hw::PlatformRegistry::instance().get("npu3720");
  const Backend& ov = BackendRegistry::instance().get("ov_sim");
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 1;
  EXPECT_THROW((void)ov.build(models::build_model("efficientnet_b0"), config, npu),
               ConfigError);
  EXPECT_NO_THROW((void)ov.build(models::build_model("resnet50"), config, npu));
  EXPECT_NO_THROW(
      (void)ov.build(models::build_model("mobilenetv2_10"), config, npu));
  // The error names the offending operator.
  try {
    (void)ov.build(models::build_model("efficientnetv2_t"), config, npu);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("Silu"), std::string::npos);
  }
}

TEST(Engine, UtilizationBounded) {
  const Graph model = models::build_model("resnet50");
  BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 64;
  const Engine engine =
      BackendRegistry::instance().get("trt_sim").build(model, config, a100());
  const EngineProfile p = engine.profile(hw::PlatformState(a100()), 50);
  EXPECT_GT(p.utilization.gpu, 0.0);
  EXPECT_LE(p.utilization.gpu, 1.0);
  EXPECT_GT(p.utilization.mem, 0.0);
  EXPECT_LE(p.utilization.mem, 1.0);
}

}  // namespace
}  // namespace proof::backends

// Unit + integration tests: layer mapping (the paper's first contribution).
//
// The key property — verified against the engines' hidden ground truth —
// is that the mapping ladder reconstructs the exact backend-layer -> model-
// node correspondence from public information only, across all three
// simulated runtimes' information regimes.
#include <gtest/gtest.h>

#include "backends/backend.hpp"
#include "hw/platform.hpp"
#include "mapping/layer_mapping.hpp"
#include "mapping/stack_mapping.hpp"
#include "models/zoo.hpp"
#include "test_util.hpp"

namespace proof::mapping {
namespace {

struct MapCase {
  std::string backend;
  std::string model;
};

backends::Engine build(const MapCase& c) {
  const Graph model = models::build_model(c.model);
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 4;
  const auto& platform = hw::PlatformRegistry::instance().get("a100");
  return backends::BackendRegistry::instance().get(c.backend).build(model, config,
                                                                    platform);
}

class MappingMatrix : public ::testing::TestWithParam<MapCase> {};

TEST_P(MappingMatrix, ReconstructsGroundTruthExactly) {
  const backends::Engine engine = build(GetParam());
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  const LayerMapping mapping = map_layers(engine, oar);

  EXPECT_EQ(mapping.entries.size(), engine.layers().size());
  EXPECT_EQ(verify_against_truth(mapping, engine), 0u)
      << GetParam().backend << "/" << GetParam().model;
  EXPECT_DOUBLE_EQ(mapping.node_coverage(ar.num_nodes()), 1.0);
  EXPECT_EQ(mapping.count(MapMethod::kUnmapped), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MappingMatrix,
    ::testing::Values(MapCase{"trt_sim", "resnet50"},
                      MapCase{"trt_sim", "vit_tiny"},
                      MapCase{"trt_sim", "swin_tiny"},
                      MapCase{"trt_sim", "shufflenetv2_10"},
                      MapCase{"trt_sim", "efficientnetv2_t"},
                      MapCase{"ov_sim", "resnet50"},
                      MapCase{"ov_sim", "mobilenetv2_10"},
                      MapCase{"ov_sim", "mlp_mixer_b16"},
                      MapCase{"ort_sim", "resnet50"},
                      MapCase{"ort_sim", "shufflenetv2_10"},
                      MapCase{"ort_sim", "distilbert"}));

TEST(Mapping, TrtRegionsResolveViaIoSearch) {
  const backends::Engine engine = build({"trt_sim", "vit_tiny"});
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  const LayerMapping mapping = map_layers(engine, oar);
  // Opaque regions carry no name info; they must be recovered structurally.
  size_t region_io = 0;
  for (size_t i = 0; i < engine.layers().size(); ++i) {
    if (engine.layers()[i].is_opaque) {
      EXPECT_TRUE(mapping.entries[i].method == MapMethod::kIoSearch ||
                  mapping.entries[i].method == MapMethod::kDependencyInference);
      ++region_io;
    }
  }
  EXPECT_GT(region_io, 0u);
}

TEST(Mapping, OvUsesNameListMetadata) {
  const backends::Engine engine = build({"ov_sim", "resnet50"});
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  const LayerMapping mapping = map_layers(engine, oar);
  EXPECT_GT(mapping.count(MapMethod::kNameList) + mapping.count(MapMethod::kExactName),
            0u);
  EXPECT_EQ(mapping.count(MapMethod::kIoSearch), 0u);
}

TEST(Mapping, OrtReordersRegisterAliases) {
  const backends::Engine engine = build({"ort_sim", "resnet50"});
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  const LayerMapping mapping = map_layers(engine, oar);
  size_t inserted = 0;
  for (const LayerMapEntry& e : mapping.entries) {
    if (e.method == MapMethod::kBackendInserted) {
      ++inserted;
      EXPECT_TRUE(e.model_nodes.empty());
    }
  }
  EXPECT_GT(inserted, 0u);
  // The renamed tensor resolves back to the model tensor.
  EXPECT_EQ(oar.resolve("input_r"), "input");
}

TEST(Mapping, FusedLayersRegisteredOnOar) {
  const backends::Engine engine = build({"trt_sim", "resnet50"});
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  (void)map_layers(engine, oar);
  // After mapping, the OAR's layer view matches the backend layer count
  // (excluding backend-inserted conversion layers).
  size_t non_reorder = 0;
  for (const auto& layer : engine.layers()) {
    if (!layer.is_reorder) {
      ++non_reorder;
    }
  }
  EXPECT_EQ(oar.layers().size(), non_reorder);
}

TEST(StackMapping, BidirectionalNavigation) {
  const backends::Engine engine = build({"trt_sim", "resnet50"});
  const AnalyzeRepresentation ar(engine.analysis_graph());
  OptimizedAnalyzeRepresentation oar(ar);
  const LayerMapping mapping = map_layers(engine, oar);
  const StackMapping stack(engine, mapping);

  ASSERT_EQ(stack.num_layers(), engine.layers().size());
  // model node -> backend layer -> kernels -> backend layer round trip.
  for (size_t i = 0; i < engine.layers().size(); ++i) {
    for (const std::string& node : stack.model_nodes_of(i)) {
      EXPECT_EQ(stack.backend_layer_of(node), static_cast<int>(i));
    }
    for (const std::string& kernel : stack.kernels_of(i)) {
      EXPECT_EQ(stack.backend_layer_of_kernel(kernel), static_cast<int>(i));
    }
  }
  EXPECT_EQ(stack.backend_layer_of("not_a_node"), -1);
  EXPECT_EQ(stack.backend_layer_of_kernel("not_a_kernel"), -1);
}

TEST(Mapping, MethodNamesRender) {
  EXPECT_EQ(map_method_name(MapMethod::kIoSearch), "io_search");
  EXPECT_EQ(map_method_name(MapMethod::kUnmapped), "unmapped");
}

}  // namespace
}  // namespace proof::mapping

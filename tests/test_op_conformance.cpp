// Conformance harness: for a curated configuration of every operator type,
// check the analysis contracts hold together —
//   * shape inference produces the shape the reference execution fills,
//   * FLOP and memory predictions are finite and non-negative,
//   * memory never exceeds the naive bound (all inputs + outputs + params),
//   * the op class is stable across calls.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reference_executor.hpp"
#include "models/builder.hpp"
#include "ops/op_def.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

/// One conformance case: builds a single-op (or tiny) graph and returns the
/// tensor whose producer is the op under test.
struct OpCase {
  std::string label;
  std::function<std::string(GraphBuilder&)> build;
};

std::vector<OpCase> conformance_cases() {
  std::vector<OpCase> cases;
  const auto add = [&](const std::string& label,
                       std::function<std::string(GraphBuilder&)> fn) {
    cases.push_back({label, std::move(fn)});
  };

  add("Conv", [](GraphBuilder& b) {
    return b.conv(b.input("x", Shape{2, 3, 9, 9}), 4, 3, 2);
  });
  add("ConvDepthwise", [](GraphBuilder& b) {
    return b.dwconv(b.input("x", Shape{1, 6, 8, 8}), 3, 1);
  });
  add("ConvTranspose", [](GraphBuilder& b) {
    const std::string x = b.input("x", Shape{1, 4, 5, 5});
    AttrMap attrs;
    attrs.set("strides", std::vector<int64_t>{2, 2});
    attrs.set("pads", std::vector<int64_t>{0, 0, 0, 0});
    attrs.set("group", static_cast<int64_t>(1));
    return b.node("ConvTranspose", {x, b.param("w", Shape{4, 8, 2, 2})},
                  std::move(attrs));
  });
  add("Gemm", [](GraphBuilder& b) {
    return b.linear(b.input("x", Shape{3, 16}), 8);
  });
  add("MatMul", [](GraphBuilder& b) {
    return b.matmul(b.input("a", Shape{2, 4, 8}), b.input("c", Shape{8, 6}));
  });
  add("Einsum", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("equation", std::string("bij,bjk->bik"));
    return b.node("Einsum",
                  {b.input("a", Shape{2, 3, 4}), b.input("c", Shape{2, 4, 5})},
                  std::move(attrs));
  });
  add("BatchNormalization", [](GraphBuilder& b) {
    return b.batchnorm(b.input("x", Shape{2, 4, 5, 5}));
  });
  add("LayerNormalization", [](GraphBuilder& b) {
    return b.layernorm(b.input("x", Shape{2, 7, 12}));
  });
  add("GroupNormalization", [](GraphBuilder& b) {
    return b.groupnorm(b.input("x", Shape{1, 8, 4, 4}), 4);
  });
  add("Softmax", [](GraphBuilder& b) {
    return b.softmax(b.input("x", Shape{3, 9}));
  });
  add("LogSoftmax", [](GraphBuilder& b) {
    return b.node("LogSoftmax", {b.input("x", Shape{3, 9})});
  });
  add("ReduceMean", [](GraphBuilder& b) {
    return b.reduce_mean(b.input("x", Shape{2, 6, 4}), {1}, true);
  });
  add("ReduceMax", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("axes", std::vector<int64_t>{2});
    return b.node("ReduceMax", {b.input("x", Shape{2, 3, 5})}, std::move(attrs));
  });
  add("ArgMax", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("axis", static_cast<int64_t>(1));
    return b.node("ArgMax", {b.input("x", Shape{2, 10})}, std::move(attrs));
  });
  add("MaxPool", [](GraphBuilder& b) {
    return b.maxpool(b.input("x", Shape{1, 3, 8, 8}), 3, 2);
  });
  add("AveragePool", [](GraphBuilder& b) {
    return b.avgpool(b.input("x", Shape{1, 3, 8, 8}), 2, 2, 0);
  });
  add("GlobalAveragePool", [](GraphBuilder& b) {
    return b.global_avgpool(b.input("x", Shape{2, 5, 6, 6}));
  });
  add("GlobalMaxPool", [](GraphBuilder& b) {
    return b.node("GlobalMaxPool", {b.input("x", Shape{2, 5, 6, 6})});
  });
  add("Transpose", [](GraphBuilder& b) {
    return b.transpose(b.input("x", Shape{2, 3, 4, 5}), {0, 2, 3, 1});
  });
  add("Reshape", [](GraphBuilder& b) {
    return b.reshape(b.input("x", Shape{2, 12}), {0, 3, 4});
  });
  add("Flatten", [](GraphBuilder& b) {
    return b.flatten(b.input("x", Shape{2, 3, 4}));
  });
  add("Concat", [](GraphBuilder& b) {
    return b.concat({b.input("a", Shape{1, 2, 4}), b.input("c", Shape{1, 3, 4})}, 1);
  });
  add("Split", [](GraphBuilder& b) {
    return b.split(b.input("x", Shape{1, 6, 4}), 1, 2)[0];
  });
  add("Slice", [](GraphBuilder& b) {
    return b.slice(b.input("x", Shape{1, 10, 4}), {1}, {2}, {7});
  });
  add("Gather", [](GraphBuilder& b) {
    return b.embedding(b.input("ids", Shape{2, 3}, DType::kI64), 50, 8);
  });
  add("Pad", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("pads", std::vector<int64_t>{0, 0, 1, 1, 0, 0, 1, 1});
    return b.node("Pad", {b.input("x", Shape{1, 2, 4, 4})}, std::move(attrs));
  });
  add("Resize", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("scales", std::vector<double>{1.0, 1.0, 2.0, 2.0});
    attrs.set("mode", std::string("nearest"));
    return b.node("Resize", {b.input("x", Shape{1, 2, 4, 4})}, std::move(attrs));
  });
  add("Expand", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("shape", std::vector<int64_t>{4, 3, 8});
    return b.node("Expand", {b.input("x", Shape{1, 1, 8})}, std::move(attrs));
  });
  add("Cast", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("to", std::string("fp16"));
    return b.node("Cast", {b.input("x", Shape{5})}, std::move(attrs));
  });
  add("Where", [](GraphBuilder& b) {
    return b.node("Where", {b.input("c", Shape{4}, DType::kBool),
                            b.input("a", Shape{4}), b.input("d", Shape{4})});
  });
  add("DepthToSpace", [](GraphBuilder& b) {
    AttrMap attrs;
    attrs.set("blocksize", static_cast<int64_t>(2));
    return b.node("DepthToSpace", {b.input("x", Shape{1, 8, 3, 3})},
                  std::move(attrs));
  });
  add("InstanceNormalization", [](GraphBuilder& b) {
    const std::string x = b.input("x", Shape{2, 3, 4, 4});
    return b.node("InstanceNormalization",
                  {x, b.param("s", Shape{3}), b.param("bias", Shape{3})});
  });
  add("PRelu", [](GraphBuilder& b) {
    return b.node("PRelu", {b.input("x", Shape{1, 3, 4, 4}),
                            b.param("slope", Shape{3, 1, 1})});
  });
  add("QuantizeDequantize", [](GraphBuilder& b) {
    const std::string x = b.input("x", Shape{6});
    const std::string s = b.param("s", Shape{1});
    return b.node("DequantizeLinear", {b.node("QuantizeLinear", {x, s}), s});
  });
  // A representative sample of unary activations.
  for (const char* act : {"Relu", "Sigmoid", "Tanh", "Gelu", "Silu", "HardSwish",
                          "Erf", "Elu", "Softplus", "Mish", "Abs"}) {
    add(act, [act](GraphBuilder& b) {
      return b.act(b.input("x", Shape{2, 7}), act);
    });
  }
  return cases;
}

class OpConformance : public ::testing::TestWithParam<OpCase> {};

TEST_P(OpConformance, AnalysisContractsHold) {
  GraphBuilder b("conformance");
  const std::string out = GetParam().build(b);
  const Graph g = b.finish({out});
  const NodeId id = g.producer(out);
  ASSERT_NE(id, kInvalidNode);
  const Node& node = g.node(id);
  const OpDef& def = op_def_for(node);
  const OpContext ctx(g, node);

  // FLOP / memory predictions: finite, non-negative, within the naive bound.
  const double flops = def.flops(ctx);
  EXPECT_TRUE(std::isfinite(flops));
  EXPECT_GE(flops, 0.0);
  const MemoryEstimate mem = def.memory(ctx);
  EXPECT_GE(mem.read_bytes, 0.0);
  EXPECT_GE(mem.write_bytes, 0.0);
  EXPECT_GE(mem.param_bytes, 0.0);
  double naive = 0.0;
  for (size_t i = 0; i < ctx.num_inputs(); ++i) {
    naive += static_cast<double>(ctx.input(i).size_bytes());
  }
  for (size_t i = 0; i < ctx.num_outputs(); ++i) {
    naive += static_cast<double>(ctx.output(i).size_bytes());
  }
  EXPECT_LE(mem.total(), naive + 1.0);

  // Class stability.
  EXPECT_EQ(def.op_class(ctx), def.op_class(ctx));

  // Shape inference idempotence.
  const auto descs1 = def.infer(ctx);
  const auto descs2 = def.infer(ctx);
  ASSERT_EQ(descs1.size(), descs2.size());
  for (size_t i = 0; i < descs1.size(); ++i) {
    EXPECT_EQ(descs1[i].shape, descs2[i].shape);
  }

  // If the op has a reference implementation, execution must succeed with
  // the inferred shapes and produce only finite values.
  if (def.has_reference()) {
    const ReferenceExecutor exec(g);
    const auto values = exec.run_random();
    const Tensor& result = values.at(out);
    EXPECT_EQ(result.shape(), g.tensor(out).shape);
    for (int64_t i = 0; i < result.numel(); ++i) {
      EXPECT_TRUE(std::isfinite(result.at(i))) << GetParam().label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpConformance,
                         ::testing::ValuesIn(conformance_cases()),
                         [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace proof

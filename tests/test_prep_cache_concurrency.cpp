// Concurrency guarantees of the preparation cache: many threads hammering
// get_or_prepare must build each key exactly once, always agree on the
// published entry, and keep the stats ledger consistent (hits + misses ==
// lookups, reconciled against the obs counters the cache emits).
// Runs under TSan via scripts/check_tsan.sh (suite name matches its filter).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backends/backend.hpp"
#include "core/prep_cache.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

/// Fresh cache + metrics state for each test; restores nothing because every
/// gtest case runs in its own ctest process (gtest_discover_tests).
void reset_state() {
  PrepCache::instance().set_enabled(true);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();
  obs::MetricsRegistry::instance().reset();
}

uint64_t counter_value(const char* name) {
  return obs::MetricsRegistry::instance().counter(name).value();
}

TEST(PrepCache, ConcurrentIdenticalKeysBuildExactlyOnce) {
  reset_state();
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform = hw::PlatformRegistry::instance().get("a100");
  const backends::BuildConfig config{DType::kF16, 4};

  constexpr size_t kCallers = 32;
  ThreadPool pool(8);
  std::vector<std::shared_ptr<const PreparedEngine>> results(kCallers);
  pool.parallel_for(kCallers, [&](size_t i) {
    results[i] =
        PrepCache::instance().get_or_prepare(model, backend, platform, config);
  });

  // Every caller got the same published object — the build ran once.
  for (size_t i = 1; i < kCallers; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i].get(), results[0].get());
  }

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_misses, 1u);
  EXPECT_EQ(stats.engine_hits, kCallers - 1);
  EXPECT_EQ(PrepCache::instance().size(), 1u);
}

TEST(PrepCache, ConcurrentDistinctKeysBuildOncePerKey) {
  reset_state();
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform = hw::PlatformRegistry::instance().get("a100");
  const std::vector<int64_t> batches = {1, 2, 4, 8};

  constexpr size_t kRounds = 8;
  ThreadPool pool(8);
  const size_t total = batches.size() * kRounds;
  std::vector<std::shared_ptr<const PreparedEngine>> results(total);
  pool.parallel_for(total, [&](size_t i) {
    const backends::BuildConfig config{DType::kF16, batches[i % batches.size()]};
    results[i] =
        PrepCache::instance().get_or_prepare(model, backend, platform, config);
  });

  // One engine per distinct batch; callers of the same batch share it.
  std::set<const PreparedEngine*> distinct;
  for (size_t i = 0; i < total; ++i) {
    ASSERT_NE(results[i], nullptr);
    distinct.insert(results[i].get());
    EXPECT_EQ(results[i].get(), results[i % batches.size()].get());
  }
  EXPECT_EQ(distinct.size(), batches.size());

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_misses, batches.size());
  EXPECT_EQ(stats.engine_hits, total - batches.size());
  // Plan-level sharing: one plan miss for the first batch, hits afterwards.
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(PrepCache::instance().size(), batches.size());
}

TEST(PrepCache, ObsCountersReconcileWithStats) {
  reset_state();
#ifdef PROOF_OBS_DISABLED
  GTEST_SKIP() << "instrumentation compiled out (PROOF_OBS=OFF)";
#else
  if (!obs::enabled()) {
    GTEST_SKIP() << "observability disabled in this environment";
  }
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform = hw::PlatformRegistry::instance().get("a100");

  constexpr size_t kCalls = 24;
  ThreadPool pool(6);
  pool.parallel_for(kCalls, [&](size_t i) {
    const backends::BuildConfig config{DType::kF16,
                                       static_cast<int64_t>(i % 3 + 1)};
    (void)PrepCache::instance().get_or_prepare(model, backend, platform,
                                               config);
  });

  const uint64_t lookups = counter_value("prep_cache.lookups");
  const uint64_t hits = counter_value("prep_cache.hits");
  const uint64_t misses = counter_value("prep_cache.misses");
  EXPECT_EQ(lookups, kCalls);
  EXPECT_EQ(hits + misses, lookups);
  EXPECT_EQ(misses, 3u);  // one per distinct batch

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_hits, hits);
  EXPECT_EQ(stats.engine_misses, misses);
  EXPECT_EQ(stats.evictions, counter_value("prep_cache.evictions"));
#endif
}

TEST(PrepCache, CapacityBoundsResidencyAndShrinksEagerly) {
  reset_state();
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform = hw::PlatformRegistry::instance().get("a100");

  const size_t original = PrepCache::instance().capacity();
  PrepCache::instance().set_capacity(4);
  EXPECT_EQ(PrepCache::instance().capacity(), 4u);
  for (int64_t batch = 1; batch <= 8; ++batch) {
    const backends::BuildConfig config{DType::kF16, batch};
    (void)PrepCache::instance().get_or_prepare(model, backend, platform, config);
    // FIFO never evicts the entry just inserted.
    const backends::BuildConfig again{DType::kF16, batch};
    (void)PrepCache::instance().get_or_prepare(model, backend, platform, again);
  }
  EXPECT_EQ(PrepCache::instance().size(), 4u);
  EXPECT_EQ(PrepCache::instance().stats().evictions, 4u);

  // Shrinking drops the oldest entries immediately.
  PrepCache::instance().set_capacity(2);
  EXPECT_EQ(PrepCache::instance().size(), 2u);
  EXPECT_EQ(PrepCache::instance().stats().evictions, 6u);

  // Capacity 0 = unbounded.
  PrepCache::instance().set_capacity(0);
  for (int64_t batch = 1; batch <= 8; ++batch) {
    const backends::BuildConfig config{DType::kF16, batch};
    (void)PrepCache::instance().get_or_prepare(model, backend, platform, config);
  }
  EXPECT_EQ(PrepCache::instance().size(), 8u);
  PrepCache::instance().set_capacity(original);
}

TEST(PrepCache, DisabledBypassRecordsNothing) {
  reset_state();
  PrepCache::instance().set_enabled(false);
  const Graph model = proof::testing::small_cnn();
  const backends::Backend& backend =
      backends::BackendRegistry::instance().get("trt_sim");
  const hw::PlatformDesc& platform = hw::PlatformRegistry::instance().get("a100");
  const backends::BuildConfig config{DType::kF16, 2};

  const auto a =
      PrepCache::instance().get_or_prepare(model, backend, platform, config);
  const auto b =
      PrepCache::instance().get_or_prepare(model, backend, platform, config);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());  // private builds, nothing shared

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_hits, 0u);
  EXPECT_EQ(stats.engine_misses, 0u);
  EXPECT_EQ(counter_value("prep_cache.lookups"), 0u);
  EXPECT_EQ(PrepCache::instance().size(), 0u);
  PrepCache::instance().set_enabled(true);
}

}  // namespace
}  // namespace proof

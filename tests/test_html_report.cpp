// Unit tests: the HTML dataviewer output.
#include <gtest/gtest.h>

#include <fstream>

#include "core/html_report.hpp"
#include "core/profiler.hpp"

namespace proof {
namespace {

ProfileReport sample_report() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 8;
  opt.mode = MetricMode::kPredicted;
  return Profiler(opt).run_zoo("resnet34");
}

TEST(HtmlReport, ContainsStructureAndData) {
  const ProfileReport r = sample_report();
  const std::string html = report::render_html_report(r);
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("resnet34"), std::string::npos);
  EXPECT_NE(html.find("NVIDIA A100"), std::string::npos);
  // Inline SVG chart embedded.
  EXPECT_NE(html.find("<svg"), std::string::npos);
  // One table row per backend layer.
  size_t rows = 0;
  size_t pos = 0;
  while ((pos = html.find("<tr>", pos)) != std::string::npos) {
    ++rows;
    pos += 4;
  }
  EXPECT_GE(rows, r.layers.size());
  // Summary tiles present.
  EXPECT_NE(html.find("mapping coverage"), std::string::npos);
  EXPECT_NE(html.find("roofline bound"), std::string::npos);
}

TEST(HtmlReport, MultiSectionPage) {
  const ProfileReport a = sample_report();
  const ProfileReport b = sample_report();
  const std::string html = report::render_html_report(
      "two runs", {{"first", &a}, {"second", &b}});
  EXPECT_NE(html.find("two runs"), std::string::npos);
  EXPECT_NE(html.find("<h2>first</h2>"), std::string::npos);
  EXPECT_NE(html.find("<h2>second</h2>"), std::string::npos);
}

TEST(HtmlReport, EscapesMarkup) {
  const ProfileReport r = sample_report();
  const std::string html =
      report::render_html_report("<script>alert(1)</script>", {{"s", &r}});
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(HtmlReport, TruncatesLongNodeLists) {
  // Opaque transformer regions map to dozens of nodes; the table shows
  // "first ... last (N nodes)" instead of the full list.
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 1;
  opt.mode = MetricMode::kPredicted;
  const ProfileReport r = Profiler(opt).run_zoo("vit_tiny");
  const std::string html = report::render_html_report(r);
  EXPECT_NE(html.find("nodes)"), std::string::npos);
}

TEST(HtmlReport, SaveToDisk) {
  const ProfileReport r = sample_report();
  const std::string path = ::testing::TempDir() + "/proof_report.html";
  report::save_html(report::render_html_report(r), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "<!doctype html>");
}

}  // namespace
}  // namespace proof

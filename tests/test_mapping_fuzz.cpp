// Property/fuzz test: random fusion partitions over the Optimized Analyze
// Representation.  Whatever partition a (simulated) backend optimizer picks,
// two invariants must hold (paper §3.2.3 — fusion is a relabeling, not a
// rewrite):
//   1. FLOP conservation: the optimized layers' FLOP sums to the base
//      representation's total.
//   2. Exactly-once coverage: every model node appears in exactly one
//      optimized layer.
// Partitions are drawn from a seeded Rng, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/analyze_representation.hpp"
#include "analysis/optimized_representation.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

Graph build_case(const std::string& name) {
  if (name == "small_cnn") {
    return proof::testing::small_cnn();
  }
  if (name == "small_transformer") {
    return proof::testing::small_transformer();
  }
  return models::build_model(name);
}

/// Checks both invariants for one fused OAR.
void expect_partition_invariants(const AnalyzeRepresentation& ar,
                                 const OptimizedAnalyzeRepresentation& oar,
                                 uint64_t seed) {
  const std::vector<OptimizedAnalyzeRepresentation::OptLayer> layers =
      oar.layers();

  double fused_total = 0.0;
  std::vector<int> claims(ar.num_nodes(), 0);
  for (const auto& layer : layers) {
    fused_total += layer.flops;
    // Per-layer FLOP itself must match the member sum.
    EXPECT_CLOSE(layer.flops, oar.fused_flops(layer.members), 1e-12)
        << layer.name << " (seed " << seed << ")";
    for (NodeId id : layer.members) {
      ASSERT_GE(id, 0) << "seed " << seed;
      ASSERT_LT(static_cast<size_t>(id), claims.size()) << "seed " << seed;
      ++claims[static_cast<size_t>(id)];
    }
  }

  EXPECT_CLOSE(fused_total, ar.total_flops(), 1e-9)
      << "fusion must preserve FLOP (seed " << seed << ")";
  for (size_t i = 0; i < claims.size(); ++i) {
    EXPECT_EQ(claims[i], 1) << "node " << i << " covered " << claims[i]
                            << " times (seed " << seed << ")";
  }
}

/// Variant A: independently assign each node to one of k buckets (or none);
/// fuse every bucket with >= 2 members.  Members may be non-contiguous —
/// set_fused_op must cope with arbitrary node sets.
void fuzz_random_assignment(const AnalyzeRepresentation& ar, uint64_t seed) {
  Rng rng(seed);
  OptimizedAnalyzeRepresentation oar(ar);
  const uint64_t buckets = 2 + rng.next_below(6);
  std::map<uint64_t, std::vector<NodeId>> groups;
  for (size_t i = 0; i < ar.num_nodes(); ++i) {
    const uint64_t b = rng.next_below(buckets + 1);
    if (b < buckets) {  // bucket `buckets` means "leave unfused"
      groups[b].push_back(static_cast<NodeId>(i));
    }
  }
  for (const auto& [bucket, members] : groups) {
    if (members.size() < 2) {
      continue;
    }
    oar.set_fused_op("fuzz_bucket_" + std::to_string(bucket), members);
  }
  expect_partition_invariants(ar, oar, seed);
}

/// Variant B: contiguous runs of random length (the realistic shape backend
/// optimizers produce), occasionally skipping nodes.
void fuzz_contiguous_runs(const AnalyzeRepresentation& ar, uint64_t seed) {
  Rng rng(seed);
  OptimizedAnalyzeRepresentation oar(ar);
  size_t i = 0;
  size_t run_id = 0;
  while (i < ar.num_nodes()) {
    const size_t len = 1 + static_cast<size_t>(rng.next_below(5));
    if (len >= 2 && rng.next_double() < 0.8) {
      std::vector<NodeId> members;
      for (size_t j = i; j < std::min(i + len, ar.num_nodes()); ++j) {
        members.push_back(static_cast<NodeId>(j));
      }
      if (members.size() >= 2) {
        oar.set_fused_op("fuzz_run_" + std::to_string(run_id++), members);
      }
    }
    i += len;
  }
  expect_partition_invariants(ar, oar, seed);
}

class MappingFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(MappingFuzz, RandomAssignmentPreservesFlopAndCoverage) {
  const AnalyzeRepresentation ar(build_case(GetParam()));
  for (uint64_t trial = 0; trial < 16; ++trial) {
    fuzz_random_assignment(
        ar, Rng::from_string(GetParam(), 1000 + trial).next_u64());
  }
}

TEST_P(MappingFuzz, ContiguousRunsPreserveFlopAndCoverage) {
  const AnalyzeRepresentation ar(build_case(GetParam()));
  for (uint64_t trial = 0; trial < 16; ++trial) {
    fuzz_contiguous_runs(
        ar, Rng::from_string(GetParam(), 2000 + trial).next_u64());
  }
}

TEST_P(MappingFuzz, DoubleClaimThrows) {
  const AnalyzeRepresentation ar(build_case(GetParam()));
  ASSERT_GE(ar.num_nodes(), 2u);
  OptimizedAnalyzeRepresentation oar(ar);
  oar.set_fused_op("first", {NodeId{0}, NodeId{1}});
  EXPECT_THROW(oar.set_fused_op("second", {NodeId{1}}), Error);
  // The failed call must not have corrupted coverage.
  expect_partition_invariants(ar, oar, 0);
}

TEST_P(MappingFuzz, UnfusedBaselineIsIdentity) {
  // With no fusion at all, layers() is exactly the per-node analysis.
  const AnalyzeRepresentation ar(build_case(GetParam()));
  const OptimizedAnalyzeRepresentation oar(ar);
  const auto layers = oar.layers();
  ASSERT_EQ(layers.size(), ar.num_nodes());
  // layers() orders by topological position, not node id — match by member.
  for (const auto& layer : layers) {
    ASSERT_EQ(layer.members.size(), 1u);
    EXPECT_FALSE(layer.is_fused);
    EXPECT_CLOSE(layer.flops, ar.analysis(layer.members[0]).flops, 1e-12);
  }
  expect_partition_invariants(ar, oar, 0);
}

INSTANTIATE_TEST_SUITE_P(SmallAndZooModels, MappingFuzz,
                         ::testing::Values("small_cnn", "small_transformer",
                                           "shufflenetv2_05"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace proof

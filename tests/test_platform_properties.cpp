// Property tests: latency/power-model invariants swept over every platform
// and workload class (parameterized).
#include <gtest/gtest.h>

#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "hw/power.hpp"

namespace proof::hw {
namespace {

struct PlatformClassCase {
  std::string platform;
  OpClass cls;
};

std::vector<PlatformClassCase> all_cases() {
  std::vector<PlatformClassCase> cases;
  for (const std::string& platform : paper_platform_ids()) {
    for (const OpClass cls :
         {OpClass::kGemm, OpClass::kConv, OpClass::kConvPointwise,
          OpClass::kConvDepthwise, OpClass::kElementwise, OpClass::kReduction,
          OpClass::kNormalization, OpClass::kSoftmax, OpClass::kDataMovement,
          OpClass::kCopy}) {
      cases.push_back({platform, cls});
    }
  }
  return cases;
}

DType supported_dtype(const PlatformDesc& desc) {
  return desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
}

class LatencyProperties : public ::testing::TestWithParam<PlatformClassCase> {};

TEST_P(LatencyProperties, MonotoneNonNegativeAndBounded) {
  const auto& [platform_id, cls] = GetParam();
  const PlatformDesc& desc = PlatformRegistry::instance().get(platform_id);
  const LatencyModel model{PlatformState(desc)};
  const DType dtype = supported_dtype(desc);

  double prev_latency = 0.0;
  for (const double scale : {1e5, 1e7, 1e9, 1e11}) {
    KernelWork k;
    k.name = "k";
    k.cls = cls;
    k.dtype = dtype;
    k.hw_flops = cls == OpClass::kDataMovement || cls == OpClass::kCopy
                     ? 0.0
                     : scale;
    k.matrix_flops = 0.0;
    k.bytes = scale / 10.0;
    const KernelTiming t = model.time_kernel(k);

    // Latency includes the launch overhead and is strictly positive.
    EXPECT_GE(t.latency_s, desc.kernel_overhead_s);
    // The roofline max form: latency >= each component + overhead.
    EXPECT_GE(t.latency_s + 1e-15, desc.kernel_overhead_s +
                                       std::max(t.compute_s, t.memory_s) - 1e-15);
    // Monotone in workload size.
    EXPECT_GT(t.latency_s, prev_latency * 0.999);
    prev_latency = t.latency_s;

    // Attained rates never exceed theoretical ceilings.
    if (k.hw_flops > 0.0 && t.compute_s > 0.0) {
      EXPECT_LE(k.hw_flops / t.compute_s, desc.matrix_peak(dtype) * 1.001)
          << platform_id;
    }
    if (t.memory_s > 0.0) {
      EXPECT_LE(k.bytes / t.memory_s, desc.dram_bw * 1.001) << platform_id;
    }
  }
}

std::string case_name(const ::testing::TestParamInfo<PlatformClassCase>& info) {
  return info.param.platform + "_" +
         std::string(op_class_name(info.param.cls));
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, LatencyProperties,
                         ::testing::ValuesIn(all_cases()), case_name);

class PlatformPowerProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(PlatformPowerProperties, PowerBoundedAndMonotone) {
  const PlatformDesc& desc = PlatformRegistry::instance().get(GetParam());
  const PowerModel model{PlatformState(desc)};
  const double idle = model.power_w({0.0, 0.0});
  const double busy = model.power_w({1.0, 1.0});
  EXPECT_GT(idle, 0.0);
  EXPECT_GT(busy, idle);
  // Full-load power is bounded by the sum of the rail maxima + static parts.
  double bound = desc.power.idle_w + desc.power.gpu_max_w + desc.power.mem_max_w;
  for (size_t i = 0; i < desc.cpu_clusters.size(); ++i) {
    bound += desc.power.cpu_cluster_w;
  }
  EXPECT_LE(busy, bound * 1.001);
  // Monotone in each utilization independently.
  EXPECT_LE(model.power_w({0.5, 0.5}), model.power_w({0.9, 0.5}));
  EXPECT_LE(model.power_w({0.5, 0.5}), model.power_w({0.5, 0.9}));
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformPowerProperties,
                         ::testing::ValuesIn(paper_platform_ids()),
                         [](const auto& info) { return info.param; });

class PlatformClockProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(PlatformClockProperties, DownclockNeverSpeedsUp) {
  const PlatformDesc& desc = PlatformRegistry::instance().get(GetParam());
  if (desc.gpu_clock.available_mhz.size() < 2) {
    GTEST_SKIP() << "single clock step";
  }
  ClockSetting slow;
  slow.gpu_mhz = desc.gpu_clock.available_mhz.front();
  const LatencyModel fast{PlatformState(desc)};
  const LatencyModel slowed{PlatformState(desc, slow)};
  KernelWork k;
  k.name = "k";
  k.cls = OpClass::kGemm;
  k.dtype = supported_dtype(desc);
  k.hw_flops = 1e10;
  k.bytes = 1e7;
  EXPECT_GE(slowed.time_kernel(k).latency_s, fast.time_kernel(k).latency_s);
  EXPECT_LE(slowed.achieved_bandwidth(), fast.achieved_bandwidth() * 1.001);
}

INSTANTIATE_TEST_SUITE_P(AllPlatforms, PlatformClockProperties,
                         ::testing::ValuesIn(paper_platform_ids()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace proof::hw

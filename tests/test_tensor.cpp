// Unit tests: dtype tables, Shape algebra (incl. broadcast properties),
// Tensor storage.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "tensor/dtype.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace proof {
namespace {

TEST(DType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::kF32), 4u);
  EXPECT_EQ(dtype_size(DType::kF16), 2u);
  EXPECT_EQ(dtype_size(DType::kBF16), 2u);
  EXPECT_EQ(dtype_size(DType::kI8), 1u);
  EXPECT_EQ(dtype_size(DType::kI64), 8u);
  EXPECT_EQ(dtype_name(DType::kF16), "fp16");
  EXPECT_EQ(dtype_from_name("half"), DType::kF16);
  EXPECT_EQ(dtype_from_name("int8"), DType::kI8);
  EXPECT_THROW((void)dtype_from_name("float8"), Error);
}

TEST(DType, RoundTripAllValues) {
  for (const DType d : {DType::kF32, DType::kF16, DType::kBF16, DType::kI8,
                        DType::kI32, DType::kI64, DType::kBool}) {
    EXPECT_EQ(dtype_from_name(std::string(dtype_name(d))), d);
  }
}

TEST(DType, FloatFamily) {
  EXPECT_TRUE(dtype_is_float(DType::kF32));
  EXPECT_TRUE(dtype_is_float(DType::kBF16));
  EXPECT_FALSE(dtype_is_float(DType::kI8));
  EXPECT_FALSE(dtype_is_float(DType::kI64));
}

TEST(Shape, BasicProperties) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarHasNumelOne) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, NegativeExtentRejected) {
  EXPECT_THROW(Shape({2, -1, 3}), Error);
}

TEST(Shape, AxisNormalizationBounds) {
  const Shape s{2, 3};
  EXPECT_EQ(s.normalize_axis(-2), 0);
  EXPECT_THROW((void)s.dim(2), Error);
  EXPECT_THROW((void)s.dim(-3), Error);
}

TEST(Shape, InsertEraseDims) {
  Shape s{2, 3};
  s.insert_dim(1, 5);
  EXPECT_EQ(s, (Shape{2, 5, 3}));
  s.insert_dim(-1, 7);  // append position via negative axis
  EXPECT_EQ(s, (Shape{2, 5, 3, 7}));
  s.erase_dim(1);
  EXPECT_EQ(s, (Shape{2, 3, 7}));
}

struct BroadcastCase {
  Shape a, b, expected;
};

class BroadcastTest : public ::testing::TestWithParam<BroadcastCase> {};

TEST_P(BroadcastTest, MatchesNumpySemantics) {
  const auto& c = GetParam();
  EXPECT_TRUE(Shape::broadcastable(c.a, c.b));
  EXPECT_EQ(Shape::broadcast(c.a, c.b), c.expected);
  // Broadcast is symmetric.
  EXPECT_EQ(Shape::broadcast(c.b, c.a), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastTest,
    ::testing::Values(
        BroadcastCase{{2, 3}, {2, 3}, {2, 3}},
        BroadcastCase{{2, 3}, {3}, {2, 3}},
        BroadcastCase{{2, 1, 4}, {3, 1}, {2, 3, 4}},
        BroadcastCase{{1}, {5, 5}, {5, 5}},
        BroadcastCase{{}, {4, 2}, {4, 2}},
        BroadcastCase{{128, 1, 197, 197}, {1}, {128, 1, 197, 197}},
        BroadcastCase{{8, 49, 49}, {1, 8, 49, 49}, {1, 8, 49, 49}}));

TEST(Shape, BroadcastIncompatibleThrows) {
  EXPECT_FALSE(Shape::broadcastable(Shape{2, 3}, Shape{2, 4}));
  EXPECT_THROW((void)Shape::broadcast(Shape{2, 3}, Shape{2, 4}), Error);
}

TEST(Shape, BroadcastIdentityProperty) {
  // broadcast(s, s) == s for a variety of shapes.
  for (const Shape& s : {Shape{1}, Shape{3, 4}, Shape{2, 1, 5}, Shape{}}) {
    EXPECT_EQ(Shape::broadcast(s, s), s);
  }
}

TEST(TensorDesc, SizeBytesUsesDtype) {
  TensorDesc d;
  d.dtype = DType::kF16;
  d.shape = Shape{2, 10};
  EXPECT_EQ(d.size_bytes(), 40);
  d.dtype = DType::kF32;
  EXPECT_EQ(d.size_bytes(), 80);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 2});
  EXPECT_EQ(t.numel(), 4);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
}

TEST(Tensor, ValueConstructorChecksCount) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f}), Error);
}

TEST(Tensor, RandomIsDeterministicPerKey) {
  const Tensor a = Tensor::random(Shape{16}, "w1");
  const Tensor b = Tensor::random(Shape{16}, "w1");
  const Tensor c = Tensor::random(Shape{16}, "w2");
  EXPECT_EQ(a.values(), b.values());
  EXPECT_NE(a.values(), c.values());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_GE(a.at(i), -1.0f);
    EXPECT_LT(a.at(i), 1.0f);
  }
}

TEST(Tensor, Full) {
  const Tensor t = Tensor::full(Shape{3}, 2.5f);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t.at(i), 2.5f);
  }
}

}  // namespace
}  // namespace proof

// LLM decode-workload tests: the KV-cache byte accounting that makes the
// decode phase memory-bound, and FLOP-conservation fuzzing over the decode
// builders (same invariants as test_mapping_fuzz.cpp — fusion is a
// relabeling, not a rewrite, and that must hold for the new graphs too).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analysis/analyze_representation.hpp"
#include "analysis/llm_traffic.hpp"
#include "analysis/optimized_representation.hpp"
#include "models/zoo.hpp"
#include "support/rng.hpp"
#include "tensor/dtype.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

/// A deliberately tiny decoder so AR construction stays fast; the byte
/// accounting is shape-driven, so small dims exercise the same math.
models::LlmConfig tiny_config(bool gated) {
  models::LlmConfig cfg;
  cfg.id = gated ? "tiny_llama" : "tiny_gpt2";
  cfg.display = "tiny decoder";
  cfg.layers = 3;
  cfg.dim = 64;
  cfg.heads = 4;
  cfg.ffn = 128;
  cfg.vocab = 256;
  cfg.gated_mlp = gated;
  cfg.rotary = gated;
  cfg.qkv_bias = !gated;
  return cfg;
}

TEST(LlmDecode, KvCacheBytesGrowLinearlyInPastLength) {
  const models::LlmConfig cfg = tiny_config(/*gated=*/true);
  const int64_t dtype_bytes =
      static_cast<int64_t>(dtype_size(DType::kF32));  // builder default
  // K plus V, one pair per layer, each [1, heads, S_past, dim/heads].
  const int64_t bytes_per_position = 2 * cfg.layers * cfg.dim * dtype_bytes;

  for (const int64_t past : {8, 16, 64, 256}) {
    const AnalyzeRepresentation ar(models::build_llm_decode_step(cfg, past));
    const DecodeTraffic traffic = audit_decode_traffic(ar);
    SCOPED_TRACE("past_len " + std::to_string(past));
    EXPECT_EQ(traffic.kv_cache_tensors, 2 * cfg.layers);
    EXPECT_EQ(traffic.kv_cache_read_bytes, bytes_per_position * past);
    // Write-back carries the appended token: S_past + 1 positions.
    EXPECT_EQ(traffic.kv_cache_write_bytes, bytes_per_position * (past + 1));
    EXPECT_GT(traffic.weight_bytes, 0);
    EXPECT_GE(traffic.activation_bytes, 0);
    EXPECT_EQ(traffic.kv_cache_read_bytes + traffic.kv_cache_write_bytes +
                  traffic.weight_bytes + traffic.activation_bytes,
              traffic.total_bytes);
  }
}

TEST(LlmDecode, AuditMatchesGraphTensorSizes) {
  // The audit's cache-read count must equal the sum of the graph's own
  // tensor descriptors for the past_* inputs — the same sizes the reference
  // executor allocates and the analytical model charges as traffic.
  const models::LlmConfig cfg = tiny_config(/*gated=*/false);
  const Graph graph = models::build_llm_decode_step(cfg, 32);
  const AnalyzeRepresentation ar(graph);
  const DecodeTraffic traffic = audit_decode_traffic(ar);

  int64_t expected_read = 0;
  int64_t cache_inputs = 0;
  for (const std::string& name : graph.inputs()) {
    if (is_kv_cache_input(name)) {
      expected_read += graph.tensor(name).size_bytes();
      ++cache_inputs;
    }
  }
  EXPECT_EQ(cache_inputs, 2 * cfg.layers);
  EXPECT_EQ(traffic.kv_cache_read_bytes, expected_read);

  int64_t expected_write = 0;
  for (const std::string& name : graph.outputs()) {
    const NodeId producer = graph.producer(name);
    if (producer >= 0 && graph.nodes()[producer].is("Concat")) {
      expected_write += graph.tensor(name).size_bytes();
    }
  }
  EXPECT_GT(expected_write, 0);
  EXPECT_EQ(traffic.kv_cache_write_bytes, expected_write);
}

TEST(LlmDecode, FlopsNearlyFlatWhileBytesGrow) {
  // The property that makes long-context decode bandwidth-bound: doubling
  // the position roughly doubles cache traffic but adds only the attention
  // score/value FLOPs, a sliver next to the weight GEMMs.
  const models::LlmConfig cfg = models::llm_config("gpt2");
  const AnalyzeRepresentation near(models::build_llm_decode_step(cfg, 64));
  const AnalyzeRepresentation far(models::build_llm_decode_step(cfg, 1024));

  const DecodeTraffic near_traffic = audit_decode_traffic(near);
  const DecodeTraffic far_traffic = audit_decode_traffic(far);
  EXPECT_CLOSE(static_cast<double>(far_traffic.kv_cache_read_bytes),
               16.0 * static_cast<double>(near_traffic.kv_cache_read_bytes),
               1e-12);
  EXPECT_GT(far_traffic.kv_cache_fraction(), near_traffic.kv_cache_fraction());

  // A 16x deeper cache adds only the attention score/value work: well under
  // a quarter more FLOPs, against 16x the cache bytes.
  EXPECT_GT(far.total_flops(), near.total_flops());
  EXPECT_LT(far.total_flops(), near.total_flops() * 1.25)
      << "decode FLOPs must stay nearly flat across positions";
  // Weight GEMMs dominate a single-token step: total FLOPs land near 2 per
  // parameter (below it, since the embedding/position tables in
  // weight_bytes are gathered, not multiplied).
  const double weight_flops =
      2.0 * static_cast<double>(near_traffic.weight_bytes) /
      static_cast<double>(dtype_size(DType::kF32));
  EXPECT_LT(near.total_flops(), weight_flops);
  EXPECT_GT(near.total_flops(), 0.6 * weight_flops);
}

TEST(LlmDecode, PrefillAndDecodeExposePerLayerCaches) {
  const models::LlmConfig cfg = tiny_config(/*gated=*/true);
  const Graph prefill = models::build_llm_prefill(cfg, 32);
  const Graph decode = models::build_llm_decode_step(cfg, 32);
  // Logits plus one K and one V tensor per layer.
  EXPECT_EQ(prefill.outputs().size(), static_cast<size_t>(1 + 2 * cfg.layers));
  EXPECT_EQ(decode.outputs().size(), static_cast<size_t>(1 + 2 * cfg.layers));
  // Prefill reads no cache; decode reads exactly one pair per layer.
  const AnalyzeRepresentation prefill_ar(prefill);
  EXPECT_EQ(audit_decode_traffic(prefill_ar).kv_cache_tensors, 0);
}

// --- FLOP-conservation fuzz over the decode builders -------------------------

/// Same invariants as test_mapping_fuzz.cpp: any fusion partition preserves
/// total FLOP and covers every node exactly once.
void expect_partition_invariants(const AnalyzeRepresentation& ar,
                                 const OptimizedAnalyzeRepresentation& oar,
                                 uint64_t seed) {
  double fused_total = 0.0;
  std::vector<int> claims(ar.num_nodes(), 0);
  for (const auto& layer : oar.layers()) {
    fused_total += layer.flops;
    for (NodeId id : layer.members) {
      ASSERT_GE(id, 0) << "seed " << seed;
      ASSERT_LT(static_cast<size_t>(id), claims.size()) << "seed " << seed;
      ++claims[static_cast<size_t>(id)];
    }
  }
  EXPECT_CLOSE(fused_total, ar.total_flops(), 1e-9)
      << "fusion must preserve FLOP (seed " << seed << ")";
  for (size_t i = 0; i < claims.size(); ++i) {
    EXPECT_EQ(claims[i], 1) << "node " << i << " covered " << claims[i]
                            << " times (seed " << seed << ")";
  }
}

class LlmDecodeFuzz : public ::testing::TestWithParam<bool> {};

TEST_P(LlmDecodeFuzz, RandomFusionPreservesFlopAndCoverage) {
  const models::LlmConfig cfg = tiny_config(GetParam());
  for (const int64_t past : {8, 64}) {
    const AnalyzeRepresentation ar(models::build_llm_decode_step(cfg, past));
    for (uint64_t trial = 0; trial < 8; ++trial) {
      const uint64_t seed =
          Rng::from_string(cfg.id, 3000 + 10 * static_cast<uint64_t>(past) +
                                       trial)
              .next_u64();
      Rng rng(seed);
      OptimizedAnalyzeRepresentation oar(ar);
      const uint64_t buckets = 2 + rng.next_below(6);
      std::map<uint64_t, std::vector<NodeId>> groups;
      for (size_t i = 0; i < ar.num_nodes(); ++i) {
        const uint64_t b = rng.next_below(buckets + 1);
        if (b < buckets) {
          groups[b].push_back(static_cast<NodeId>(i));
        }
      }
      for (const auto& [bucket, members] : groups) {
        if (members.size() >= 2) {
          oar.set_fused_op("fuzz_bucket_" + std::to_string(bucket), members);
        }
      }
      expect_partition_invariants(ar, oar, seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GatedAndPlainMlp, LlmDecodeFuzz,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? std::string("gated")
                                             : std::string("plain");
                         });

}  // namespace
}  // namespace proof

// Integration tests: the end-to-end Profiler pipeline.
#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "core/report_text.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

ProfileOptions a100_fp16(int64_t batch = 8) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = batch;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

TEST(Profiler, RequiresPlatform) {
  ProfileOptions opt;
  EXPECT_THROW(Profiler{opt}, Error);
  opt.platform_id = "a100";
  opt.batch = 0;
  EXPECT_THROW(Profiler{opt}, Error);
}

TEST(Profiler, DefaultsToPlatformRuntime) {
  const ProfileReport r = Profiler(a100_fp16()).run_zoo("resnet34");
  EXPECT_EQ(r.options.backend_id, "trt_sim");   // A100's Table-2 runtime
  ProfileOptions opt = a100_fp16();
  opt.platform_id = "xeon6330";
  opt.dtype = DType::kF32;
  const ProfileReport r2 = Profiler(opt).run_zoo("resnet34");
  EXPECT_EQ(r2.options.backend_id, "ort_sim");
}

TEST(Profiler, ReportInternallyConsistent) {
  const ProfileReport r = Profiler(a100_fp16()).run_zoo("resnet50");
  ASSERT_EQ(r.layers.size(), r.roofline.layers.size());
  double latency = 0.0;
  double flops = 0.0;
  for (const LayerReport& layer : r.layers) {
    EXPECT_GE(layer.latency_s, 0.0);
    latency += layer.latency_s;
    flops += layer.flops;
  }
  EXPECT_CLOSE(latency, r.total_latency_s, 1e-9);
  EXPECT_CLOSE(flops, r.roofline.end_to_end.flops, 1e-12);
  EXPECT_GT(r.total_latency_s, 0.0);
  EXPECT_GT(r.power_w, 0.0);
  EXPECT_DOUBLE_EQ(r.mapping_coverage, 1.0);
  EXPECT_EQ(r.unmapped_layers, 0u);
}

TEST(Profiler, PredictedFlopsMatchAnalyticalTotal) {
  // End-to-end FLOP in predicted mode equals the Analyze Representation's
  // total (fusion preserves FLOP).
  const ProfileReport r = Profiler(a100_fp16(1)).run_zoo("resnet50");
  EXPECT_NEAR(r.roofline.end_to_end.flops / 1e9, 8.207, 0.2);
}

TEST(Profiler, MeasuredModeAddsOverheadAndDiffers) {
  ProfileOptions opt = a100_fp16(8);
  opt.mode = MetricMode::kMeasured;
  const ProfileReport measured = Profiler(opt).run_zoo("mobilenetv2_10");
  opt.mode = MetricMode::kPredicted;
  const ProfileReport predicted = Profiler(opt).run_zoo("mobilenetv2_10");

  EXPECT_GT(measured.counter_profiling_time_s, 10.0);
  EXPECT_DOUBLE_EQ(predicted.counter_profiling_time_s, 0.0);
  // Hardware FLOP exceeds Model FLOP for padding-heavy MobileNet (§4.2:
  // prediction diff is negative).
  EXPECT_GT(measured.roofline.end_to_end.flops,
            predicted.roofline.end_to_end.flops);
  // Latency identical — metrics mode does not change execution.
  EXPECT_DOUBLE_EQ(measured.total_latency_s, predicted.total_latency_s);
}

TEST(Profiler, MeasuredModeUnavailableOffGpu) {
  ProfileOptions opt;
  opt.platform_id = "rpi4b";
  opt.dtype = DType::kF32;
  opt.batch = 1;
  opt.mode = MetricMode::kMeasured;
  EXPECT_THROW((void)Profiler(opt).run_zoo("mobilenetv2_05"), ConfigError);
  // kAuto silently falls back to the analytical model.
  opt.mode = MetricMode::kAuto;
  const ProfileReport r = Profiler(opt).run_zoo("mobilenetv2_05");
  EXPECT_DOUBLE_EQ(r.counter_profiling_time_s, 0.0);
}

TEST(Profiler, ThroughputImprovesWithBatch) {
  const ProfileReport b1 = Profiler(a100_fp16(1)).run_zoo("resnet50");
  const ProfileReport b64 = Profiler(a100_fp16(64)).run_zoo("resnet50");
  EXPECT_GT(b64.throughput_per_s(), 2.0 * b1.throughput_per_s());
  EXPECT_GT(b64.total_latency_s, b1.total_latency_s);
}

TEST(Profiler, AllPlatformsProfileSomething) {
  for (const std::string& platform : hw::paper_platform_ids()) {
    ProfileOptions opt;
    opt.platform_id = platform;
    const auto& desc = hw::PlatformRegistry::instance().get(platform);
    opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
    opt.batch = 1;
    const ProfileReport r = Profiler(opt).run_zoo("mobilenetv2_10");
    EXPECT_GT(r.total_latency_s, 0.0) << platform;
    EXPECT_GT(r.roofline.end_to_end.attained_flops(), 0.0) << platform;
    // Attained never exceeds the theoretical roof.
    EXPECT_LE(r.roofline.end_to_end.attained_flops(),
              r.roofline.ceilings.peak_flops * 1.001)
        << platform;
  }
}

TEST(Profiler, EdgeSlowerThanDataCenter) {
  ProfileOptions opt = a100_fp16(1);
  const double a100 = Profiler(opt).run_zoo("resnet50").total_latency_s;
  opt.platform_id = "orin_nx16";
  const double orin = Profiler(opt).run_zoo("resnet50").total_latency_s;
  opt.platform_id = "rpi4b";
  opt.dtype = DType::kF32;
  const double rpi = Profiler(opt).run_zoo("resnet50").total_latency_s;
  EXPECT_LT(a100, orin);
  EXPECT_LT(orin, rpi);
}

TEST(Profiler, ClockDownshiftSlowsAndSavesPower) {
  ProfileOptions opt;
  opt.platform_id = "orin_nx16";
  opt.dtype = DType::kF16;
  opt.batch = 16;
  const ProfileReport full = Profiler(opt).run_zoo("efficientnetv2_t");
  opt.clocks.gpu_mhz = 510.0;
  opt.clocks.mem_mhz = 2133.0;
  const ProfileReport low = Profiler(opt).run_zoo("efficientnetv2_t");
  EXPECT_GT(low.total_latency_s, full.total_latency_s);
  EXPECT_LT(low.power_w, full.power_w);
}

TEST(Profiler, AnalysisOverheadIsSmall) {
  // §4.2: the analytical model costs "a few seconds total" even on big
  // models; here (C++ on a small graph) it must be far under a second.
  const ProfileReport r = Profiler(a100_fp16()).run_zoo("resnet50");
  EXPECT_LT(r.analysis_time_s, 1.0);
}

TEST(ReportText, SummaryAndTableRender) {
  const ProfileReport r = Profiler(a100_fp16()).run_zoo("resnet50");
  const std::string summary = summary_text(r);
  EXPECT_NE(summary.find("resnet50"), std::string::npos);
  EXPECT_NE(summary.find("TFLOP/s"), std::string::npos);
  EXPECT_NE(summary.find("mapping coverage: 100.0%"), std::string::npos);
  const std::string table = layer_table_text(r, 5);
  EXPECT_NE(table.find("backend layer"), std::string::npos);
  // 5 rows + header + rule.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 7);
}

TEST(Profiler, CustomGraphSupported) {
  const ProfileReport r =
      Profiler(a100_fp16()).run(proof::testing::small_cnn());
  EXPECT_EQ(r.model_name, "small_cnn");
  EXPECT_GT(r.layers.size(), 2u);
}

}  // namespace
}  // namespace proof

// Golden-regression harness: freezes the full report_json output for four
// representative zoo models on the trt_sim backend.  Any change to shape
// inference, FLOP/memory analysis, fusion, mapping, the latency model or the
// JSON serializer shows up as a byte-level diff against tests/golden/*.json.
//
// Regenerate after an intentional change with:
//   PROOF_UPDATE_GOLDENS=1 ./proof_tests --gtest_filter='GoldenReports.*'
// and review the resulting diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "core/report_json.hpp"
#include "opt/optimizer.hpp"

#ifndef PROOF_TEST_SOURCE_DIR
#error "tests/CMakeLists.txt must define PROOF_TEST_SOURCE_DIR"
#endif

namespace proof {
namespace {

std::string golden_path(const std::string& model_id) {
  return std::string(PROOF_TEST_SOURCE_DIR) + "/golden/" + model_id + ".json";
}

bool update_goldens() {
  const char* env = std::getenv("PROOF_UPDATE_GOLDENS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

/// Zeroes the wall-clock fields (the only non-deterministic values in a
/// predicted-mode report) so goldens are byte-reproducible across machines.
std::string normalize(std::string json) {
  for (const char* key :
       {"\"analysis_time_s\":", "\"counter_profiling_time_s\":"}) {
    const size_t key_len = std::strlen(key);
    size_t pos = json.find(key);
    while (pos != std::string::npos) {
      const size_t start = pos + key_len;
      const size_t end = json.find_first_of(",}", start);
      if (end == std::string::npos) {
        break;  // truncated JSON; the byte comparison will fail loudly
      }
      json.replace(start, end - start, "0");
      pos = json.find(key, start);
    }
  }
  return json;
}

std::string generate(const std::string& model_id) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = model_id == "sd_unet" ? 2 : 4;  // keep SD activation maps small
  opt.mode = MetricMode::kPredicted;
  const ProfileReport report = Profiler(opt).run_zoo(model_id);
  // include_self_profile stays off: self-profile values are wall-clock.
  return normalize(report_to_json(report));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Locates the first differing line for a readable failure message.
std::string first_diff(const std::string& got, const std::string& want) {
  std::istringstream got_in(got);
  std::istringstream want_in(want);
  std::string got_line;
  std::string want_line;
  size_t line = 0;
  while (true) {
    ++line;
    const bool got_ok = static_cast<bool>(std::getline(got_in, got_line));
    const bool want_ok = static_cast<bool>(std::getline(want_in, want_line));
    if (!got_ok && !want_ok) {
      return "(no textual diff found)";
    }
    if (got_ok != want_ok || got_line != want_line) {
      std::ostringstream msg;
      msg << "first diff at line " << line << ":\n  golden: "
          << (want_ok ? want_line : "<eof>")
          << "\n  actual: " << (got_ok ? got_line : "<eof>");
      return msg.str();
    }
  }
}

class GoldenReports : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenReports, MatchesFrozenJson) {
  const std::string model_id = GetParam();
  const std::string path = golden_path(model_id);
  const std::string actual = generate(model_id);
  ASSERT_FALSE(actual.empty());

  if (update_goldens()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " — regenerate with PROOF_UPDATE_GOLDENS=1";
  EXPECT_EQ(actual, expected)
      << "report JSON drifted from " << path << "\n"
      << first_diff(actual, expected)
      << "\nIf the change is intentional, regenerate with "
         "PROOF_UPDATE_GOLDENS=1 and review the diff.";
}

TEST_P(GoldenReports, GenerationIsDeterministic) {
  // The freeze only works if two in-process runs already agree byte-for-byte
  // (engine jitter is seeded by kernel identity, not wall clock).
  const std::string model_id = GetParam();
  EXPECT_EQ(generate(model_id), generate(model_id));
}

INSTANTIATE_TEST_SUITE_P(FourZooModels, GoldenReports,
                         ::testing::Values("resnet50", "bert_base",
                                           "shufflenetv2_10", "sd_unet"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// The fifth golden freezes the guarded optimizer's report for the §4.5
// model: full final-config report plus the "optimization" section (rounds,
// classifications, accepted AND rejected variants with deltas).  The section
// carries no wall-clock values by construction; the wrapping report is
// normalized like the other goldens.
std::string generate_optimize() {
  opt::OptimizeOptions options;
  options.base.platform_id = "a100";
  options.base.backend_id = "trt_sim";
  options.base.dtype = DType::kF16;
  options.base.batch = 256;
  options.base.mode = MetricMode::kPredicted;
  const opt::OptimizeResult result = opt::optimize("shufflenetv2_10", options);
  return normalize(report_to_json(result.final_report, false,
                                  opt::optimization_section_json(result.log)));
}

TEST(GoldenReportsOptimize, MatchesFrozenJson) {
  const std::string path = golden_path("optimize_shufflenetv2_10");
  const std::string actual = generate_optimize();
  ASSERT_FALSE(actual.empty());

  if (update_goldens()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " — regenerate with PROOF_UPDATE_GOLDENS=1";
  EXPECT_EQ(actual, expected)
      << "optimization report drifted from " << path << "\n"
      << first_diff(actual, expected)
      << "\nIf the change is intentional, regenerate with "
         "PROOF_UPDATE_GOLDENS=1 and review the diff.";
}

TEST(GoldenReportsOptimize, GenerationIsDeterministic) {
  EXPECT_EQ(generate_optimize(), generate_optimize());
}

}  // namespace
}  // namespace proof

// Unit tests: dataviewer output — text tables, CSV, SVG roofline charts.
#include <gtest/gtest.h>

#include <fstream>

#include "report/csv.hpp"
#include "report/svg_roofline.hpp"
#include "report/table.hpp"
#include "support/error.hpp"

namespace proof::report {
namespace {

TEST(TextTable, AlignsAndRules) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_rule();
  t.add_row({"beta_longer", "20.25"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // Numeric column right-aligned: "  1.5" ends where "20.25" ends.
  const size_t l1 = out.find("1.5 |");
  const size_t l2 = out.find("20.25 |");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l2, std::string::npos);
}

TEST(TextTable, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only_one"}), Error);
  EXPECT_THROW(TextTable({}), Error);
}

TEST(Csv, EscapesSpecials) {
  CsvWriter w({"name", "note"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"quote\"inside", "multi\nline"});
  const std::string out = w.to_string();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Csv, SavesToDisk) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/proof_test.csv";
  w.save(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
}

roofline::Analysis sample_analysis() {
  roofline::Analysis a;
  a.ceilings.peak_flops = 312e12;
  a.ceilings.peak_bw = 1555e9;
  a.ceilings.extra_bw_lines = {{"62 GB/s", 62e9}};
  for (int i = 0; i < 5; ++i) {
    roofline::Point p;
    p.name = "layer_" + std::to_string(i);
    p.flops = 1e9 * (i + 1);
    p.bytes = 1e7;
    p.latency_s = 1e-4;
    p.cls = i % 2 == 0 ? OpClass::kConv : OpClass::kDataMovement;
    a.layers.push_back(p);
  }
  a.end_to_end = roofline::aggregate(a.layers, "model");
  return a;
}

TEST(Svg, RendersWellFormedChart) {
  SvgOptions opt;
  opt.title = "test chart";
  const std::string svg = render_roofline_svg(sample_analysis(), opt);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("test chart"), std::string::npos);
  // 5 layer points as circles.
  size_t circles = 0;
  size_t pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    pos += 7;
  }
  EXPECT_EQ(circles, 5u);
  // Extra bandwidth ceiling appears with its label.
  EXPECT_NE(svg.find("62 GB/s"), std::string::npos);
  // Peak annotation present.
  EXPECT_NE(svg.find("peak"), std::string::npos);
}

TEST(Svg, PointLabelsOptIn) {
  SvgOptions opt;
  opt.label_points = true;
  const std::string svg = render_roofline_svg(sample_analysis(), opt);
  EXPECT_NE(svg.find("layer_0"), std::string::npos);
}

TEST(Svg, SkipsDegeneratePoints) {
  roofline::Analysis a = sample_analysis();
  roofline::Point zero;
  zero.name = "zero";
  a.layers.push_back(zero);  // no flops/bytes/latency
  const std::string svg = render_roofline_svg(a, SvgOptions{});
  size_t circles = 0;
  size_t pos = 0;
  while ((pos = svg.find("<circle", pos)) != std::string::npos) {
    ++circles;
    pos += 7;
  }
  EXPECT_EQ(circles, 5u);  // degenerate point not drawn
}

TEST(Svg, SaveToDisk) {
  const std::string path = ::testing::TempDir() + "/proof_chart.svg";
  save_svg(render_roofline_svg(sample_analysis(), SvgOptions{}), path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

}  // namespace
}  // namespace proof::report

// Unit tests: interned-name graph index — string pool round-trips, lazy index
// invalidation + generation protocol, and a graph-mutation fuzz asserting the
// id-based, string-based and legacy-map lookup paths agree.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/string_pool.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

/// Restores the process-wide lookup mode when a test exits (even on failure).
struct LookupModeGuard {
  ~LookupModeGuard() { Graph::set_lookup_mode(Graph::LookupMode::kIndexed); }
};

Node make_node(const std::string& name, const std::string& type,
               std::vector<std::string> in, std::vector<std::string> out) {
  Node n;
  n.name = name;
  n.op_type = type;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  return n;
}

Graph chain3() {
  // in -> a -> b -> c -> out
  Graph g("chain3");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{4}});
  g.add_input("in");
  g.add_node(make_node("a", "Relu", {"in"}, {"ta"}));
  g.add_node(make_node("b", "Relu", {"ta"}, {"tb"}));
  g.add_node(make_node("c", "Relu", {"tb"}, {"tc"}));
  g.add_output("tc");
  return g;
}

// --- StringPool --------------------------------------------------------------

TEST(StringPool, RoundTripAndDenseIds) {
  StringPool pool;
  EXPECT_EQ(pool.find("x"), StringPool::kInvalidId);
  const int32_t a = pool.intern("alpha");
  const int32_t b = pool.intern("beta");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(pool.intern("alpha"), a);  // re-intern is idempotent
  EXPECT_EQ(pool.find("beta"), b);
  EXPECT_EQ(pool.view(a), "alpha");
  EXPECT_EQ(pool.str(b), "beta");
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(pool.contains("alpha"));
  EXPECT_FALSE(pool.contains("gamma"));
}

TEST(StringPool, ManySimilarNamesStayDistinct) {
  // Near-identical names (shared prefixes, same length) stress the hash
  // table: every name must keep its own id and round-trip exactly.
  StringPool pool;
  std::vector<int32_t> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(pool.intern("tensor_" + std::to_string(i)));
  }
  EXPECT_EQ(pool.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    const std::string name = "tensor_" + std::to_string(i);
    EXPECT_EQ(pool.find(name), ids[static_cast<size_t>(i)]);
    EXPECT_EQ(pool.view(ids[static_cast<size_t>(i)]), name);
  }
  // Ids stay stable across later growth (append-only contract).
  const int32_t early = pool.find("tensor_0");
  pool.intern("late_arrival");
  EXPECT_EQ(pool.find("tensor_0"), early);
}

TEST(StringPool, OutOfRangeIdThrows) {
  StringPool pool;
  pool.intern("only");
  EXPECT_THROW((void)pool.view(1), Error);
  EXPECT_THROW((void)pool.view(-1), Error);
}

// --- invalidation / generation protocol --------------------------------------

TEST(GraphIndex, ConstQueriesDoNotBumpGeneration) {
  const Graph g = chain3();
  const uint64_t gen = g.index_generation();
  (void)g.topo_order();
  (void)g.consumers("ta");
  (void)g.find_node("b");
  (void)g.nodes_of_type("Relu");
  EXPECT_EQ(g.index_generation(), gen);
}

TEST(GraphIndex, AddNodeBumpsGenerationAndRefreshesResults) {
  Graph g = chain3();
  EXPECT_EQ(g.topo_order().size(), 3u);
  EXPECT_TRUE(g.consumers("tc").empty());
  const uint64_t gen = g.index_generation();

  g.add_node(make_node("d", "Sigmoid", {"tc"}, {"td"}));
  EXPECT_GT(g.index_generation(), gen);

  // Every lazy index serves fresh results after the mutation.
  EXPECT_EQ(g.topo_order().size(), 4u);
  ASSERT_EQ(g.consumers("tc").size(), 1u);
  EXPECT_EQ(g.node(g.consumers("tc").front()).name, "d");
  EXPECT_EQ(g.find_node("d"), g.topo_order().back());
  EXPECT_EQ(g.nodes_of_type("Sigmoid").size(), 1u);
  EXPECT_EQ(g.producer("td"), g.find_node("d"));
}

TEST(GraphIndex, MutableNodeAccessInvalidates) {
  Graph g = chain3();
  EXPECT_EQ(g.find_node("b"), 1);
  const uint64_t gen = g.index_generation();

  g.node(1).name = "b_renamed";  // non-const access invalidates
  EXPECT_GT(g.index_generation(), gen);
  EXPECT_EQ(g.find_node("b"), kInvalidNode);
  EXPECT_EQ(g.find_node("b_renamed"), 1);

  // Rewiring is picked up too: route c's input straight to ta.
  g.node(2).inputs = {"ta"};
  ASSERT_EQ(g.consumers("ta").size(), 2u);
  EXPECT_TRUE(g.consumers("tb").empty());
}

TEST(GraphIndex, CachedTopoReferenceStableUntilMutation) {
  const Graph g = chain3();
  const std::vector<NodeId>* first = &g.topo_order();
  const std::vector<NodeId>* second = &g.topo_order();
  EXPECT_EQ(first, second);  // cached: same object, no recompute
  EXPECT_EQ(g.index_generation(), g.index_generation());
}

TEST(GraphIndex, SetTensorDoesNotInvalidateStructure) {
  Graph g = chain3();
  (void)g.topo_order();
  const uint64_t gen = g.index_generation();
  g.set_tensor({.name = "ta", .dtype = DType::kF16, .shape = Shape{4}});
  EXPECT_EQ(g.index_generation(), gen);  // desc-only change, structure intact
  EXPECT_EQ(g.tensor("ta").dtype, DType::kF16);
}

TEST(GraphIndex, CopyResetsInternerButPreservesLookups) {
  const Graph g = chain3();
  (void)g.topo_order();
  const Graph copy = g;  // must re-intern into its own pool
  EXPECT_EQ(copy.find_node("b"), g.find_node("b"));
  EXPECT_EQ(copy.topo_order(), g.topo_order());
  EXPECT_EQ(copy.producer("tb"), g.producer("tb"));
  EXPECT_EQ(copy.tensor_name(copy.tensor_id("ta")), "ta");
}

TEST(GraphIndex, DuplicateNodeNameSurfacesOnQuery) {
  Graph g("dup");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1}});
  g.add_input("in");
  g.add_node(make_node("same", "Relu", {"in"}, {"t0"}));
  g.add_node(make_node("same", "Relu", {"t0"}, {"t1"}));
  EXPECT_THROW((void)g.find_node("same"), ModelError);
}

// --- graph-mutation fuzz ------------------------------------------------------

/// Asserts that the string-keyed and id-keyed lookup APIs agree on `g`, and
/// that the indexed implementation matches the legacy std::map baseline.
void expect_lookup_agreement(const Graph& g) {
  // String API vs id API, in the default indexed mode.
  Graph::set_lookup_mode(Graph::LookupMode::kIndexed);
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    const Node& n = g.node(static_cast<NodeId>(i));
    ASSERT_EQ(g.find_node(n.name), static_cast<NodeId>(i));
    const auto in_ids = g.node_input_ids(static_cast<NodeId>(i));
    ASSERT_EQ(in_ids.size(), n.inputs.size());
    for (size_t k = 0; k < n.inputs.size(); ++k) {
      EXPECT_EQ(in_ids[k], g.tensor_id(n.inputs[k]));
      EXPECT_EQ(g.tensor_name(in_ids[k]), n.inputs[k]);
    }
    const auto out_ids = g.node_output_ids(static_cast<NodeId>(i));
    ASSERT_EQ(out_ids.size(), n.outputs.size());
    for (size_t k = 0; k < n.outputs.size(); ++k) {
      EXPECT_EQ(out_ids[k], g.tensor_id(n.outputs[k]));
    }
  }
  std::vector<std::string> tensor_names;
  for (const auto& [name, desc] : g.tensors()) {
    tensor_names.push_back(name);
    const TensorId id = g.tensor_id(name);
    ASSERT_NE(id, kInvalidTensor) << name;
    EXPECT_EQ(g.has_tensor(name), g.has_tensor(id));
    EXPECT_EQ(&g.tensor(name), &g.tensor(id));
    EXPECT_EQ(g.producer(name), g.producer(id));
    const auto by_name = g.consumers(name);
    const auto by_id = g.consumers(id);
    ASSERT_TRUE(std::equal(by_name.begin(), by_name.end(), by_id.begin(),
                           by_id.end()));
  }

  // Indexed vs legacy baseline: snapshot under kIndexed...
  const std::vector<NodeId> topo_indexed = g.topo_order();
  std::vector<NodeId> producers_indexed;
  std::vector<std::vector<NodeId>> consumers_indexed;
  for (const std::string& name : tensor_names) {
    producers_indexed.push_back(g.producer(name));
    const auto c = g.consumers(name);
    consumers_indexed.emplace_back(c.begin(), c.end());
  }
  std::vector<NodeId> all_nodes(g.num_nodes());
  for (size_t i = 0; i < all_nodes.size(); ++i) {
    all_nodes[i] = static_cast<NodeId>(i);
  }
  const Graph::Boundary boundary_indexed = g.boundary(all_nodes);
  const auto subgraph_indexed =
      g.subgraph_by_io(boundary_indexed.inputs, boundary_indexed.outputs);

  // ... and compare against the legacy map implementation.
  LookupModeGuard guard;
  Graph::set_lookup_mode(Graph::LookupMode::kLegacyMaps);
  EXPECT_EQ(g.topo_order(), topo_indexed);
  for (size_t i = 0; i < tensor_names.size(); ++i) {
    EXPECT_EQ(g.producer(tensor_names[i]), producers_indexed[i]) << tensor_names[i];
    const auto c = g.consumers(tensor_names[i]);
    EXPECT_TRUE(std::equal(c.begin(), c.end(), consumers_indexed[i].begin(),
                           consumers_indexed[i].end()))
        << tensor_names[i];
  }
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_EQ(g.find_node(g.node(static_cast<NodeId>(i)).name),
              static_cast<NodeId>(i));
  }
  const Graph::Boundary boundary_legacy = g.boundary(all_nodes);
  EXPECT_EQ(boundary_legacy.inputs, boundary_indexed.inputs);
  EXPECT_EQ(boundary_legacy.outputs, boundary_indexed.outputs);
  EXPECT_EQ(boundary_legacy.params, boundary_indexed.params);
  const auto subgraph_legacy =
      g.subgraph_by_io(boundary_indexed.inputs, boundary_indexed.outputs);
  EXPECT_EQ(subgraph_legacy, subgraph_indexed);
}

TEST(GraphIndexFuzz, RandomMutationsKeepAllLookupPathsInAgreement) {
  LookupModeGuard guard;
  std::mt19937 rng(20260806);
  for (int round = 0; round < 8; ++round) {
    Graph g("fuzz_" + std::to_string(round));
    g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{8}});
    g.add_input("in");
    std::vector<std::string> tensors = {"in"};
    int fresh = 0;

    const int mutations = 20 + round * 10;
    for (int m = 0; m < mutations; ++m) {
      const int action = static_cast<int>(rng() % 10);
      if (action < 6 || g.num_nodes() == 0) {
        // Add a node consuming 1-3 random existing tensors (duplicates
        // allowed — consumer multiplicity must survive the CSR build).
        std::vector<std::string> ins;
        const int arity = 1 + static_cast<int>(rng() % 3);
        for (int k = 0; k < arity; ++k) {
          ins.push_back(tensors[rng() % tensors.size()]);
        }
        const std::string out = "t" + std::to_string(fresh);
        const std::string name = "n" + std::to_string(fresh);
        ++fresh;
        const char* type = (rng() % 2 == 0) ? "Relu" : "Add";
        g.add_node(make_node(name, type, std::move(ins), {out}));
        tensors.push_back(out);
      } else if (action < 8) {
        // Update a tensor desc in place (no structural change).
        g.set_tensor({.name = tensors[rng() % tensors.size()],
                      .dtype = DType::kF16,
                      .shape = Shape{8}});
      } else {
        // Rename a random node through the mutable accessor.
        const NodeId victim = static_cast<NodeId>(rng() % g.num_nodes());
        g.node(victim).name = "renamed_" + std::to_string(fresh++);
      }
      if (m % 7 == 0) {
        expect_lookup_agreement(g);
        if (::testing::Test::HasFatalFailure()) {
          return;
        }
      }
    }
    expect_lookup_agreement(g);
  }
}

}  // namespace
}  // namespace proof

// Unit tests: graph IR — construction, indices, topo order, subgraph search,
// boundary computation, validation.
#include <gtest/gtest.h>

#include "graph/graph.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

Node make_node(const std::string& name, const std::string& type,
               std::vector<std::string> in, std::vector<std::string> out) {
  Node n;
  n.name = name;
  n.op_type = type;
  n.inputs = std::move(in);
  n.outputs = std::move(out);
  return n;
}

Graph diamond() {
  // in -> a -> {b, c} -> d -> out
  Graph g("diamond");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{4}, .is_param = false});
  g.add_input("in");
  g.add_node(make_node("a", "Relu", {"in"}, {"ta"}));
  g.add_node(make_node("b", "Relu", {"ta"}, {"tb"}));
  g.add_node(make_node("c", "Relu", {"ta"}, {"tc"}));
  g.add_node(make_node("d", "Add", {"tb", "tc"}, {"td"}));
  g.add_output("td");
  return g;
}

TEST(Graph, ProducerConsumerIndices) {
  const Graph g = diamond();
  EXPECT_EQ(g.producer("ta"), g.find_node("a"));
  EXPECT_EQ(g.producer("in"), kInvalidNode);
  const auto consumers = g.consumers("ta");
  ASSERT_EQ(consumers.size(), 2u);
  EXPECT_EQ(g.node(consumers[0]).name, "b");
  EXPECT_EQ(g.node(consumers[1]).name, "c");
  EXPECT_EQ(g.find_node("nope"), kInvalidNode);
}

TEST(Graph, NodesOfType) {
  const Graph g = diamond();
  EXPECT_EQ(g.nodes_of_type("Relu").size(), 3u);
  EXPECT_EQ(g.nodes_of_type("Add").size(), 1u);
  EXPECT_TRUE(g.nodes_of_type("Conv").empty());
}

TEST(Graph, TopoOrderRespectsDependencies) {
  const Graph g = diamond();
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 4u);
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < order.size(); ++i) {
    pos[g.node(order[i]).name] = i;
  }
  EXPECT_LT(pos["a"], pos["b"]);
  EXPECT_LT(pos["a"], pos["c"]);
  EXPECT_LT(pos["b"], pos["d"]);
  EXPECT_LT(pos["c"], pos["d"]);
}

TEST(Graph, CycleDetection) {
  Graph g("cyclic");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1}, .is_param = false});
  g.add_input("in");
  g.add_node(make_node("a", "Add", {"in", "tb"}, {"ta"}));
  g.add_node(make_node("b", "Relu", {"ta"}, {"tb"}));
  g.add_output("tb");
  EXPECT_THROW((void)g.topo_order(), ModelError);
}

TEST(Graph, DuplicateNodeNameRejected) {
  Graph g("dup");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1}, .is_param = false});
  g.add_input("in");
  g.add_node(make_node("a", "Relu", {"in"}, {"t1"}));
  g.add_node(make_node("a", "Relu", {"t1"}, {"t2"}));
  g.add_output("t2");
  EXPECT_THROW(g.validate(), ModelError);
}

TEST(Graph, ValidateCatchesUndeclaredInput) {
  Graph g("bad");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1}, .is_param = false});
  g.add_input("in");
  g.add_node(make_node("a", "Add", {"in", "ghost"}, {"t"}));
  g.add_output("t");
  EXPECT_THROW(g.validate(), ModelError);
}

TEST(Graph, ValidateCatchesOrphanOutput) {
  Graph g("bad");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1}, .is_param = false});
  g.add_input("in");
  g.add_node(make_node("a", "Relu", {"in"}, {"t"}));
  g.add_output("nonexistent");
  EXPECT_THROW(g.validate(), ModelError);
}

TEST(Graph, SubgraphByIoFindsExactSet) {
  const Graph g = diamond();
  const auto sub = g.subgraph_by_io({"ta"}, {"td"});
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->size(), 3u);  // b, c, d
  std::set<std::string> names;
  for (const NodeId id : *sub) {
    names.insert(g.node(id).name);
  }
  EXPECT_EQ(names, (std::set<std::string>{"b", "c", "d"}));
}

TEST(Graph, SubgraphByIoWholeGraph) {
  const Graph g = diamond();
  const auto sub = g.subgraph_by_io({"in"}, {"td"});
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->size(), 4u);
}

TEST(Graph, SubgraphByIoFailsWhenBoundaryIncomplete) {
  const Graph g = diamond();
  // td depends on tb AND tc; declaring only tb as boundary escapes to "in".
  EXPECT_FALSE(g.subgraph_by_io({"tb"}, {"td"}).has_value());
  // Unknown output tensor.
  EXPECT_FALSE(g.subgraph_by_io({"in"}, {"ghost"}).has_value());
}

TEST(Graph, SubgraphByIoStopsAtParams) {
  Graph g("with_params");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{4}, .is_param = false});
  g.add_input("in");
  g.add_param("w", DType::kF32, Shape{4});
  g.add_node(make_node("m", "Mul", {"in", "w"}, {"t"}));
  g.add_output("t");
  const auto sub = g.subgraph_by_io({"in"}, {"t"});
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->size(), 1u);
}

TEST(Graph, BoundaryComputesInsOutsParams) {
  Graph g("b");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{4}, .is_param = false});
  g.add_input("in");
  g.add_param("w", DType::kF32, Shape{4});
  const NodeId n1 = g.add_node(make_node("m", "Mul", {"in", "w"}, {"t1"}));
  const NodeId n2 = g.add_node(make_node("r", "Relu", {"t1"}, {"t2"}));
  g.add_node(make_node("s", "Relu", {"t2"}, {"t3"}));
  g.add_output("t3");
  const Graph::Boundary b = g.boundary({n1, n2});
  EXPECT_EQ(b.inputs, std::vector<std::string>{"in"});
  EXPECT_EQ(b.outputs, std::vector<std::string>{"t2"});
  EXPECT_EQ(b.params, std::vector<std::string>{"w"});
}

TEST(Graph, BoundaryMarksGraphOutputsExternal) {
  const Graph g = diamond();
  const Graph::Boundary b =
      g.boundary({g.find_node("a"), g.find_node("b"), g.find_node("c"),
                  g.find_node("d")});
  EXPECT_EQ(b.inputs, std::vector<std::string>{"in"});
  EXPECT_EQ(b.outputs, std::vector<std::string>{"td"});
}

TEST(Graph, ParamAccounting) {
  Graph g("params");
  g.add_param("w1", DType::kF32, Shape{10, 10});
  g.add_param("w2", DType::kF16, Shape{5});
  EXPECT_EQ(g.param_count(), 105);
  EXPECT_EQ(g.param_bytes(), 400 + 10);
}

TEST(Graph, SmallCnnValidates) {
  const Graph g = proof::testing::small_cnn();
  EXPECT_NO_THROW(g.validate());
  EXPECT_GT(g.num_nodes(), 5u);
}

}  // namespace
}  // namespace proof

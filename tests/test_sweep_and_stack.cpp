// Unit tests: batch sweep / optimal-batch selection and the Figure-3 stack
// drill-down text.
#include <gtest/gtest.h>

#include "core/report_text.hpp"
#include "core/sweep.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"

namespace proof {
namespace {

ProfileOptions a100_opts() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

TEST(BatchSweep, ThroughputMonotoneAndKneeFound) {
  const Graph model = models::build_model("resnet50");
  const BatchSweep sweep =
      sweep_batches(a100_opts(), model, {1, 8, 64, 256, 1024});
  ASSERT_EQ(sweep.points.size(), 5u);
  // Throughput non-decreasing with batch on a GPU (no memory-capacity model).
  for (size_t i = 1; i < sweep.points.size(); ++i) {
    EXPECT_GE(sweep.points[i].throughput_per_s,
              sweep.points[i - 1].throughput_per_s * 0.99);
  }
  EXPECT_GT(sweep.optimal_batch, 1);
  // The knee is within tolerance of the best.
  double best = 0.0;
  double at_knee = 0.0;
  for (const BatchPoint& p : sweep.points) {
    best = std::max(best, p.throughput_per_s);
    if (p.batch == sweep.optimal_batch) {
      at_knee = p.throughput_per_s;
    }
  }
  EXPECT_GE(at_knee, 0.95 * best);
}

TEST(BatchSweep, KneePrefersSmallestSufficientBatch) {
  // With 100% tolerance every batch qualifies; the smallest wins.
  const Graph model = models::build_model("mobilenetv2_05");
  const BatchSweep sweep = sweep_batches(a100_opts(), model, {1, 4, 16}, 0.999);
  EXPECT_EQ(sweep.optimal_batch, 1);
}

TEST(BatchSweep, RejectsBadTolerance) {
  const Graph model = models::build_model("mobilenetv2_05");
  EXPECT_THROW((void)sweep_batches(a100_opts(), model, {1}, 1.5), Error);
}

TEST(SweepClocks, PowerSearchAppendsToSweepOut) {
  // Pins the documented capture semantics (core/sweep.hpp): the evaluated
  // points are APPENDED to sweep_out->points, never replacing existing ones,
  // so successive searches accumulate into one combined table.
  ProfileOptions opt = a100_opts();
  opt.batch = 1;
  const Graph model = models::build_model("mobilenetv2_05");

  ClockSweep out;
  ClockPoint sentinel;
  sentinel.gpu_mhz = -1.0;  // impossible clock: unambiguously pre-existing
  sentinel.latency_s = 42.0;
  out.points.push_back(sentinel);

  const double generous = search_gpu_clock_under_power(opt, model, 1e9, &out);
  ASSERT_GT(out.points.size(), 1u);
  EXPECT_EQ(out.points.front().gpu_mhz, -1.0);       // sentinel kept
  EXPECT_EQ(out.points.front().latency_s, 42.0);
  const size_t segment = out.points.size() - 1;      // appended steps
  // The appended segment is sorted ascending by clock; a budget no step can
  // bust selects the highest step.
  for (size_t i = 2; i < out.points.size(); ++i) {
    EXPECT_GT(out.points[i].gpu_mhz, out.points[i - 1].gpu_mhz);
  }
  EXPECT_EQ(generous, out.points.back().gpu_mhz);

  // A second search accumulates a whole new segment after the first.
  const double strict = search_gpu_clock_under_power(opt, model, 1e-3, &out);
  EXPECT_EQ(out.points.size(), 1 + 2 * segment);
  EXPECT_EQ(out.points.front().gpu_mhz, -1.0);       // still kept
  // Every step busts a 1 mW budget: the LOWEST step is returned (the closest
  // the hardware gets to compliance), which is the new segment's first point.
  EXPECT_EQ(strict, out.points[1 + segment].gpu_mhz);
  EXPECT_EQ(strict, out.points[1].gpu_mhz);          // segments agree
}

TEST(ZooSweep, UnknownModelRecordedAsErrorNotThrown) {
  // Per the header contract, per-model failures (including unknown ids) land
  // in point.error instead of aborting the whole sweep.
  ProfileOptions opt = a100_opts();
  opt.batch = 1;
  const ZooSweep sweep = sweep_zoo(opt, {"mobilenetv2_05", "no_such_model"});
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_TRUE(sweep.points[0].error.empty());
  EXPECT_FALSE(sweep.points[1].error.empty());
  EXPECT_EQ(sweep.points[1].display, "no_such_model");
}

TEST(BatchSweep, TextMarksOptimal) {
  const Graph model = models::build_model("mobilenetv2_05");
  const BatchSweep sweep = sweep_batches(a100_opts(), model, {1, 32});
  const std::string text = sweep_text(sweep);
  EXPECT_NE(text.find("*"), std::string::npos);
  EXPECT_NE(text.find("optimal batch"), std::string::npos);
}

TEST(StackText, DrillsDownToKernels) {
  ProfileOptions opt = a100_opts();
  opt.batch = 4;
  const ProfileReport r = Profiler(opt).run_zoo("vit_tiny");
  // Opaque region layers lower to multiple kernels; the drill-down shows them.
  const std::string all = stack_text(r);
  EXPECT_NE(all.find("backend layer:"), std::string::npos);
  EXPECT_NE(all.find("device kernels:"), std::string::npos);
  EXPECT_NE(all.find("model design:"), std::string::npos);

  // Filter by a model-design node name.
  const std::string filtered = stack_text(r, "MatMul_0");
  EXPECT_NE(filtered.find("MatMul_0"), std::string::npos);
  EXPECT_LT(filtered.size(), all.size());

  // Non-matching filter reports cleanly.
  const std::string none = stack_text(r, "no_such_node_xyz");
  EXPECT_NE(none.find("no backend layer matches"), std::string::npos);
}

TEST(StackText, EveryLayerHasAtLeastOneKernelUnlessView) {
  ProfileOptions opt = a100_opts();
  opt.batch = 8;
  const ProfileReport r = Profiler(opt).run_zoo("resnet50");
  for (const LayerReport& layer : r.layers) {
    EXPECT_FALSE(layer.kernels.empty()) << layer.backend_layer;
  }
}

}  // namespace
}  // namespace proof

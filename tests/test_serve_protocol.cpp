// Wire-level guarantees of the serve protocol: the JSON parser, the
// length-prefixed framing (including partial reads, oversized prefixes and
// truncated streams over real sockets), and the request/response envelopes.
// Malformed input must always surface as a typed error — never a crash.
// Runs under TSan via scripts/check_tsan.sh (suite names match its filter).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace proof {
namespace {

// --- json parser -------------------------------------------------------------

TEST(ServeJson, ParsesScalarsAndContainers) {
  const std::string text =
      R"({"a":1,"b":-2.5e3,"c":"x\n\"y\"","d":[true,false,null],"e":{"k":7}})";
  const json::Value v = json::parse(text);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.get_int("a"), 1);
  EXPECT_DOUBLE_EQ(v.get_double("b"), -2500.0);
  EXPECT_EQ(v.get_string("c"), "x\n\"y\"");
  const json::Value* d = v.find("d");
  ASSERT_NE(d, nullptr);
  ASSERT_TRUE(d->is_array());
  ASSERT_EQ(d->array.size(), 3u);
  EXPECT_TRUE(d->array[0].as_bool());
  EXPECT_FALSE(d->array[1].as_bool(true));
  EXPECT_TRUE(d->array[2].is_null());
  const json::Value* e = v.find("e");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->get_int("k"), 7);
}

TEST(ServeJson, RawSpansSpliceSubDocumentsVerbatim) {
  // The byte-identity contract of analyze responses rests on this: a value's
  // raw span reproduces the producer's exact bytes, exotic number formats
  // included.
  const std::string text =
      R"({"report":{"x":1.2300000000e+01,"y":[1,  2 ,3]},"z":0})";
  const json::Value v = json::parse(text);
  const json::Value* report = v.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(json::raw(*report, text),
            R"({"x":1.2300000000e+01,"y":[1,  2 ,3]})");
}

TEST(ServeJson, UnicodeEscapesAndSurrogatePairs) {
  const json::Value v = json::parse(R"(["\u0041\u00e9", "\ud83d\ude00"])");
  ASSERT_EQ(v.array.size(), 2u);
  EXPECT_EQ(v.array[0].as_string(), "A\xc3\xa9");
  EXPECT_EQ(v.array[1].as_string(), "\xf0\x9f\x98\x80");
  // escape() round-trips control characters through \u00XX form.
  EXPECT_EQ(json::escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json::quote("he\"llo"), "\"he\\\"llo\"");
}

TEST(ServeJson, MalformedInputThrowsParseErrorWithOffset) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"unterminated",
        "{\"a\":1}trailing", "[\"\\ud800\"]", "01", "+1", "nul"}) {
    EXPECT_THROW((void)json::parse(bad), json::ParseError) << bad;
  }
  try {
    (void)json::parse("{\"a\": @}");
    FAIL() << "expected ParseError";
  } catch (const json::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
  }
}

TEST(ServeJson, DepthLimitHoldsAgainstDeepNesting) {
  std::string deep(4096, '[');
  deep += std::string(4096, ']');
  EXPECT_THROW((void)json::parse(deep), json::ParseError);
}

TEST(ServeJson, DuplicateKeysKeepLastOccurrence) {
  const json::Value v = json::parse(R"({"a":1,"a":2})");
  EXPECT_EQ(v.get_int("a"), 2);
}

// --- framing -----------------------------------------------------------------

TEST(ServeFraming, EncodeDecodeRoundTrip) {
  const std::string payload = R"({"id":1,"method":"ping","params":{}})";
  const std::string frame = serve::encode_frame(payload);
  ASSERT_EQ(frame.size(), payload.size() + 4);

  serve::FrameDecoder decoder;
  decoder.feed(frame);
  const std::optional<std::string> out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(ServeFraming, DecoderHandlesArbitraryChunking) {
  const std::string a = serve::encode_frame("{\"id\":1}");
  const std::string b = serve::encode_frame(std::string(1000, 'x'));
  const std::string stream = a + b;
  // Split the stream at every boundary; both frames must always come out.
  for (size_t split = 0; split <= stream.size(); ++split) {
    serve::FrameDecoder decoder;
    decoder.feed(std::string_view(stream).substr(0, split));
    std::optional<std::string> first = decoder.next();
    decoder.feed(std::string_view(stream).substr(split));
    if (!first.has_value()) {
      first = decoder.next();
    }
    ASSERT_TRUE(first.has_value()) << "split at " << split;
    EXPECT_EQ(*first, "{\"id\":1}");
    const std::optional<std::string> second = decoder.next();
    ASSERT_TRUE(second.has_value()) << "split at " << split;
    EXPECT_EQ(second->size(), 1000u);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(ServeFraming, OversizedPrefixIsAProtocolError) {
  const uint32_t huge = serve::kMaxFrameBytes + 1;
  std::string prefix(4, '\0');
  prefix[0] = static_cast<char>((huge >> 24) & 0xFF);
  prefix[1] = static_cast<char>((huge >> 16) & 0xFF);
  prefix[2] = static_cast<char>((huge >> 8) & 0xFF);
  prefix[3] = static_cast<char>(huge & 0xFF);
  serve::FrameDecoder decoder;
  decoder.feed(prefix);
  EXPECT_THROW((void)decoder.next(), serve::ProtocolError);
  EXPECT_THROW((void)serve::encode_frame(
                   std::string(serve::kMaxFrameBytes + 1, 'x')),
               serve::ProtocolError);
}

TEST(ServeFraming, SocketRoundTripAndCleanEof) {
  auto [client, server] = net::Socket::make_pair();
  serve::write_frame(client, "{\"id\":7}");
  serve::write_frame(client, "{\"id\":8}");
  client.close();  // clean close after two complete frames

  std::optional<std::string> frame = serve::read_frame(server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "{\"id\":7}");
  frame = serve::read_frame(server);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "{\"id\":8}");
  EXPECT_FALSE(serve::read_frame(server).has_value());  // EOF, not an error
}

TEST(ServeFraming, TruncatedPayloadIsAProtocolError) {
  auto [client, server] = net::Socket::make_pair();
  // Prefix promises 10 bytes; deliver 3 and vanish.
  const std::string frame = serve::encode_frame("0123456789");
  client.write_all(frame.data(), 7);
  client.close();
  EXPECT_THROW((void)serve::read_frame(server), serve::ProtocolError);
}

TEST(ServeFraming, TruncatedPrefixIsAProtocolError) {
  auto [client, server] = net::Socket::make_pair();
  const char half[2] = {0, 0};
  client.write_all(half, 2);  // 2 of the 4 length bytes
  client.close();
  EXPECT_THROW((void)serve::read_frame(server), serve::ProtocolError);
}

// --- request / response envelopes -------------------------------------------

TEST(ServeEnvelope, ParseRequestExtractsMethodAndParams) {
  const serve::Request request = serve::parse_request(
      R"({"id":42,"method":"profile","params":{"model":"resnet50","batch":8}})");
  EXPECT_EQ(request.id, 42);
  EXPECT_EQ(request.method, "profile");
  EXPECT_EQ(request.p().get_string("model"), "resnet50");
  EXPECT_EQ(request.p().get_int("batch"), 8);
}

TEST(ServeEnvelope, ParseRequestDefaultsMissingParams) {
  const serve::Request request =
      serve::parse_request(R"({"id":1,"method":"ping"})");
  EXPECT_TRUE(request.p().is_object());
  EXPECT_TRUE(request.p().object.empty());
}

TEST(ServeEnvelope, MalformedRequestsThrowTypedErrorsNeverCrash) {
  for (const char* bad : {
           "not json at all",
           "[1,2,3]",                       // not an object
           "42",                            // not an object
           R"({"id":1})",                   // no method
           R"({"id":1,"method":""})",       // empty method
           R"({"id":1,"method":7})",        // method not a string
           R"({"id":1,"method":"x","params":[1]})",  // params not an object
           "",
       }) {
    EXPECT_THROW((void)serve::parse_request(bad), serve::ProtocolError) << bad;
  }
}

TEST(ServeEnvelope, ResultAndErrorRoundTrip) {
  const std::string result_payload =
      serve::make_result(9, R"({"total_latency_s":1.25e-03})");
  const serve::Response result = serve::parse_response(result_payload);
  EXPECT_TRUE(result.is_result());
  EXPECT_EQ(result.id, 9);
  EXPECT_EQ(result.payload, R"({"total_latency_s":1.25e-03})");

  const std::string progress_payload =
      serve::make_progress(9, R"({"batch":4})");
  const serve::Response progress = serve::parse_response(progress_payload);
  EXPECT_TRUE(progress.is_progress());
  EXPECT_EQ(progress.payload, R"({"batch":4})");

  const std::string error_payload = serve::make_error(
      9, serve::ErrorCode::kOverloaded, "4 requests already in flight");
  const serve::Response error = serve::parse_response(error_payload);
  EXPECT_TRUE(error.is_error());
  EXPECT_EQ(error.error_code, 429);
  EXPECT_EQ(error.error_kind, "overloaded");
  EXPECT_EQ(error.error_message, "4 requests already in flight");
}

TEST(ServeEnvelope, ErrorMessagesWithQuotesStayValidJson) {
  const std::string payload = serve::make_error(
      1, serve::ErrorCode::kBadRequest, "unknown model \"x\"\nline2");
  const serve::Response response = serve::parse_response(payload);
  EXPECT_EQ(response.error_message, "unknown model \"x\"\nline2");
}

TEST(ServeEnvelope, ErrorKindsCoverEveryCode) {
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kBadRequest), "bad_request");
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kDeadlineExceeded),
            "deadline_exceeded");
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kOverloaded), "overloaded");
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kInternal), "internal");
  EXPECT_EQ(serve::error_kind(serve::ErrorCode::kShuttingDown),
            "shutting_down");
}

// --- deadlines ---------------------------------------------------------------

TEST(ServeDeadline, UnarmedNeverExpires) {
  const serve::Deadline none(0.0);
  EXPECT_FALSE(none.armed());
  EXPECT_FALSE(none.expired());
  EXPECT_NO_THROW(none.check("anywhere"));
}

TEST(ServeDeadline, TinyBudgetExpiresAndThrowsWithStage) {
  const serve::Deadline tiny(1e-9);
  EXPECT_TRUE(tiny.armed());
  // A nanosecond budget has elapsed by the time we get here.
  EXPECT_TRUE(tiny.expired());
  try {
    tiny.check("sweep point");
    FAIL() << "expected DeadlineExceeded";
  } catch (const serve::DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("sweep point"), std::string::npos);
  }
}

}  // namespace
}  // namespace proof

// Decode-sweep engine tests: grid semantics, the cross-platform
// decode-bound-ness claim, --jobs byte-identity, and a golden freezing the
// JSON report section (tests/golden/decode_sweep_gpt2.json).
//
// Regenerate the golden after an intentional change with:
//   PROOF_UPDATE_GOLDENS=1 ./proof_tests --gtest_filter='DecodeSweep*'
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/decode_sweep.hpp"
#include "hw/platform.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"
#include "test_util.hpp"

#ifndef PROOF_TEST_SOURCE_DIR
#error "tests/CMakeLists.txt must define PROOF_TEST_SOURCE_DIR"
#endif

namespace proof {
namespace {

DecodeSweepOptions small_options(const std::string& platform) {
  DecodeSweepOptions opt;
  opt.config_id = "gpt2";
  opt.platform_id = platform;
  opt.prefill_len = 512;
  opt.batches = {1, 4};
  opt.positions = {64, 256};
  return opt;
}

TEST(DecodeSweep, GridShapeAndMonotonicBytes) {
  const DecodeSweep sweep = sweep_decode(small_options("a100"));
  ASSERT_EQ(sweep.prefill.size(), 2u);
  ASSERT_EQ(sweep.points.size(), 4u);  // batch-major over positions

  for (size_t b = 0; b < 2; ++b) {
    for (size_t p = 0; p < 2; ++p) {
      const DecodePoint& pt = sweep.points[b * 2 + p];
      EXPECT_EQ(pt.batch, sweep.options.batches[b]);
      EXPECT_EQ(pt.position, sweep.options.positions[p]);
      EXPECT_GT(pt.latency_s, 0.0);
      EXPECT_CLOSE(pt.tokens_per_s, pt.batch / pt.latency_s, 1e-9);
    }
    // Deeper positions move strictly more bytes (the KV cache grows) and
    // decay the arithmetic intensity.
    EXPECT_GT(sweep.points[b * 2 + 1].bytes, sweep.points[b * 2].bytes);
    EXPECT_LT(sweep.points[b * 2 + 1].arithmetic_intensity,
              sweep.points[b * 2].arithmetic_intensity);
  }

  // A100 decode at batch 1 is bandwidth-bound; the GEMM-heavy prefill at
  // S=512 spends a visibly smaller share of its time on the memory system.
  EXPECT_GT(sweep.decode_bound_fraction, 0.5);
  EXPECT_TRUE(sweep.decode_bandwidth_bound());
  EXPECT_GT(sweep.decode_time.bandwidth_bound_time_fraction(),
            sweep.prefill_time.bandwidth_bound_time_fraction());
  EXPECT_LT(sweep.prefill_time.bandwidth_bound_time_fraction(), 0.9);
}

TEST(DecodeSweep, RejectsBadGridsAndConfigs) {
  EXPECT_THROW(sweep_decode(DecodeSweepOptions{}), ConfigError);  // no platform
  DecodeSweepOptions opt = small_options("a100");
  opt.config_id = "no_such_llm";
  EXPECT_THROW(sweep_decode(opt), ConfigError);
  opt = small_options("a100");
  opt.batches = {0, 1};
  EXPECT_THROW(sweep_decode(opt), ConfigError);
  opt = small_options("a100");
  opt.positions.clear();
  EXPECT_THROW(sweep_decode(opt), ConfigError);
}

TEST(DecodeSweep, AllPlatformsMostlyBandwidthBound) {
  // The paper-level claim the report makes: single-request decode is
  // bandwidth-bound nearly everywhere.  The NPU cannot lower the LLM
  // activation ops and must surface as an error row, not an abort.
  const std::vector<PlatformDecodeSummary> rows =
      sweep_decode_platforms(small_options(""));
  EXPECT_EQ(rows.size(), hw::PlatformRegistry::instance().ids().size());

  size_t bound = 0;
  size_t failed = 0;
  bool npu_failed = false;
  for (const PlatformDecodeSummary& row : rows) {
    if (!row.error.empty()) {
      ++failed;
      npu_failed |= row.platform_id == "npu3720";
      continue;
    }
    EXPECT_GT(row.decode_tokens_per_s, 0.0) << row.platform_id;
    EXPECT_GT(row.prefill_latency_s, 0.0) << row.platform_id;
    bound += row.decode_bandwidth_bound ? 1 : 0;
  }
  EXPECT_TRUE(npu_failed) << "npu3720 lowers Silu/Gelu now? update this test";
  EXPECT_EQ(failed, 1u);
  EXPECT_GE(bound, 6u) << "decode must be bandwidth-bound on >= 6 platforms";

  const std::string text = decode_platforms_text(rows);
  EXPECT_NE(text.find("failed"), std::string::npos);
  const std::string json = decode_platforms_json(rows);
  EXPECT_NE(json.find("\"platforms\""), std::string::npos);
}

TEST(DecodeSweep, JsonIsByteIdenticalAcrossJobCounts) {
  const auto run = [] { return decode_sweep_json(sweep_decode(small_options("a100"))); };
  ThreadPool::set_global_jobs(1);
  const std::string serial = run();
  ThreadPool::set_global_jobs(4);
  const std::string parallel = run();
  ThreadPool::set_global_jobs(0);  // restore the default pool
  EXPECT_EQ(serial, parallel)
      << "sweep output must not depend on --jobs (index-written points)";
}

// --- golden ------------------------------------------------------------------

std::string golden_path() {
  return std::string(PROOF_TEST_SOURCE_DIR) + "/golden/decode_sweep_gpt2.json";
}

bool update_goldens() {
  const char* env = std::getenv("PROOF_UPDATE_GOLDENS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The frozen configuration: gpt2 on a100/trt_sim, fp16, a 2x2 grid.  The
/// sweep is forced to predicted mode internally, so the JSON carries no
/// wall-clock fields and needs no normalization.
std::string generate_golden() {
  DecodeSweepOptions opt = small_options("a100");
  opt.backend_id = "trt_sim";
  return decode_sweep_json(sweep_decode(opt));
}

TEST(DecodeSweepGolden, MatchesFrozenJson) {
  const std::string path = golden_path();
  const std::string actual = generate_golden();
  ASSERT_FALSE(actual.empty());

  if (update_goldens()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden regenerated: " << path;
  }

  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " — regenerate with PROOF_UPDATE_GOLDENS=1";
  EXPECT_EQ(actual, expected)
      << "decode sweep JSON drifted from " << path
      << "\nIf the change is intentional, regenerate with "
         "PROOF_UPDATE_GOLDENS=1 and review the diff.";
}

TEST(DecodeSweepGolden, GenerationIsDeterministic) {
  EXPECT_EQ(generate_golden(), generate_golden());
}

}  // namespace
}  // namespace proof

// Unit tests: whole-graph shape inference, batch/dtype rewriting and the
// Analyze Representation (paper §3.2.2).
#include <gtest/gtest.h>

#include "analysis/analyze_representation.hpp"
#include "analysis/shape_inference.hpp"
#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

TEST(ShapeInference, FillsAllIntermediates) {
  Graph g = proof::testing::small_cnn();
  // Blank out intermediate shapes, then re-infer.
  for (const Node& n : g.nodes()) {
    for (const std::string& out : n.outputs) {
      g.tensor(out).shape = Shape{};
    }
  }
  infer_shapes(g);
  for (const Node& n : g.nodes()) {
    for (const std::string& out : n.outputs) {
      EXPECT_FALSE(g.tensor(out).shape.empty()) << out;
    }
  }
}

TEST(ShapeInference, ErrorsCarryNodeContext) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 4, 8, 8});
  const std::string y = b.conv(x, 8, 3, 1);
  Graph g = b.finish({y});
  // Corrupt the input shape so Conv inference fails.
  g.tensor("x").shape = Shape{1, 4};
  try {
    infer_shapes(g);
    FAIL() << "expected throw";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("Conv_0"), std::string::npos);
  }
}

TEST(ShapeInference, SetBatchSizePropagates) {
  Graph g = proof::testing::small_cnn();
  set_batch_size(g, 16);
  EXPECT_EQ(g.tensor(g.inputs()[0]).shape.dim(0), 16);
  for (const std::string& out : g.outputs()) {
    EXPECT_EQ(g.tensor(out).shape.dim(0), 16);
  }
}

TEST(ShapeInference, SetBatchSizeHandlesExpandedTokens) {
  // ViT expands a [1,1,D] class token to the batch via a shape attribute.
  Graph g = models::build_model("vit_tiny");
  set_batch_size(g, 8);
  for (const std::string& out : g.outputs()) {
    EXPECT_EQ(g.tensor(out).shape.dim(0), 8);
  }
  set_batch_size(g, 128);
  for (const std::string& out : g.outputs()) {
    EXPECT_EQ(g.tensor(out).shape.dim(0), 128);
  }
}

TEST(ShapeInference, ConvertFloatDtype) {
  Graph g = proof::testing::small_cnn();
  convert_float_dtype(g, DType::kF16);
  for (const auto& [name, desc] : g.tensors()) {
    if (dtype_is_float(desc.dtype)) {
      EXPECT_EQ(desc.dtype, DType::kF16) << name;
    }
  }
}

TEST(ShapeInference, ConvertKeepsIntegerTensors) {
  Graph g = models::build_model("distilbert");
  convert_float_dtype(g, DType::kF16);
  EXPECT_EQ(g.tensor("input_ids").dtype, DType::kI64);
}

TEST(AnalyzeRepresentation, PerNodeAndTotals) {
  const AnalyzeRepresentation ar(proof::testing::small_cnn());
  EXPECT_EQ(ar.analyses().size(), ar.num_nodes());
  double sum = 0.0;
  for (const NodeAnalysis& a : ar.analyses()) {
    EXPECT_GE(a.flops, 0.0);
    EXPECT_GE(a.memory.total(), 0.0);
    sum += a.flops;
  }
  EXPECT_DOUBLE_EQ(ar.total_flops(), sum);
  EXPECT_GT(ar.param_count(), 0);
}

TEST(AnalyzeRepresentation, AnalysisTracksBatchChange) {
  const AnalyzeRepresentation ar(proof::testing::small_cnn());
  const double flops1 = ar.total_flops();
  Graph g4 = proof::testing::small_cnn();
  set_batch_size(g4, 4);
  const AnalyzeRepresentation ar4(std::move(g4));
  EXPECT_NEAR(ar4.total_flops(), 4.0 * flops1, 1e-6 * flops1 * 4);
}

TEST(AnalyzeRepresentation, MemoryScalesWithBatchParamsDoNot) {
  AnalyzeRepresentation ar1(proof::testing::small_cnn());
  const MemoryEstimate m1 = ar1.total_memory();
  Graph g = proof::testing::small_cnn();
  set_batch_size(g, 8);
  const AnalyzeRepresentation ar8(std::move(g));
  const MemoryEstimate m8 = ar8.total_memory();
  EXPECT_DOUBLE_EQ(m8.param_bytes, m1.param_bytes);
  EXPECT_NEAR(m8.read_bytes, 8.0 * m1.read_bytes, 1.0);
  EXPECT_NEAR(m8.write_bytes, 8.0 * m1.write_bytes, 1.0);
}

TEST(AnalyzeRepresentation, InvalidGraphRejected) {
  Graph g("bad");
  g.set_tensor({.name = "in", .dtype = DType::kF32, .shape = Shape{1},
                .is_param = false});
  g.add_input("in");
  Node n;
  n.name = "n";
  n.op_type = "Add";
  n.inputs = {"in", "missing"};
  n.outputs = {"out"};
  g.add_node(std::move(n));
  g.add_output("out");
  EXPECT_THROW(AnalyzeRepresentation{std::move(g)}, ModelError);
}

}  // namespace
}  // namespace proof

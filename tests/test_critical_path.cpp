// Critical-path engine tests: DAG reconstruction from hand-built timelines,
// CPM slack/criticality math, the serial-degenerate invariant
// (critical_path_ns == serial latency sum), and multi-stream scheduling of
// real zoo models across all three backend sims.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "analysis/critical_path/critical_path.hpp"
#include "backends/backend.hpp"
#include "backends/stream_schedule.hpp"
#include "core/profiler.hpp"
#include "hw/platform.hpp"
#include "models/zoo.hpp"

namespace proof {
namespace {

TimelineEvent event(int layer, int stream, double start_ns, double dur_ns) {
  TimelineEvent e;
  e.layer = layer;
  e.stream = stream;
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  return e;
}

/// Diamond: A feeds both B (same stream) and C (stream 1); D joins them.
///
///   stream 0:  A[0,10)  B[10,30)          D[30,40)
///   stream 1:           C[10,15)
///   syncs:     A -> C, C -> D
ExecutionTimeline diamond() {
  ExecutionTimeline t;
  t.num_streams = 2;
  t.events = {event(0, 0, 0.0, 10.0), event(1, 0, 10.0, 20.0),
              event(2, 1, 10.0, 5.0), event(3, 0, 30.0, 10.0)};
  t.syncs = {{0, 2}, {2, 3}};
  t.makespan_ns = 40.0;
  return t;
}

TEST(CriticalPath, ReconstructsProgramOrderAndSyncEdges) {
  const critpath::Dag dag = critpath::reconstruct_dag(diamond());
  ASSERT_EQ(dag.preds.size(), 4u);
  // Program order on stream 0: A->B->D; stream 1 has only C.  Syncs add
  // A->C and C->D.
  EXPECT_EQ(dag.succs[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(dag.succs[1], (std::vector<int>{3}));
  EXPECT_EQ(dag.succs[2], (std::vector<int>{3}));
  EXPECT_TRUE(dag.succs[3].empty());
  EXPECT_EQ(dag.preds[3].size(), 2u);  // B and C join at D
  EXPECT_EQ(dag.num_edges, 4u);
}

TEST(CriticalPath, DiamondSlackAndCriticality) {
  const critpath::Report cp = critpath::analyze(diamond());
  EXPECT_EQ(cp.num_streams, 2);
  // Longest path A->B->D = 10 + 20 + 10.
  EXPECT_DOUBLE_EQ(cp.critical_path_ns, 40.0);
  EXPECT_DOUBLE_EQ(cp.makespan_ns, 40.0);
  EXPECT_DOUBLE_EQ(cp.serial_sum_ns, 45.0);
  EXPECT_NEAR(cp.parallel_speedup, 45.0 / 40.0, 1e-12);
  EXPECT_EQ(cp.sync_count, 2u);
  EXPECT_EQ(cp.edge_count, 4u);

  ASSERT_EQ(cp.layers.size(), 4u);
  for (const int layer : {0, 1, 3}) {
    EXPECT_DOUBLE_EQ(cp.layers[layer].slack_ns, 0.0) << "layer " << layer;
    EXPECT_DOUBLE_EQ(cp.layers[layer].criticality, 1.0) << "layer " << layer;
    EXPECT_TRUE(cp.layers[layer].on_critical_path) << "layer " << layer;
  }
  // C may start as late as 25 (D starts at 30, C takes 5): slack 15.
  EXPECT_DOUBLE_EQ(cp.layers[2].slack_ns, 15.0);
  EXPECT_NEAR(cp.layers[2].criticality, 5.0 / 20.0, 1e-12);
  EXPECT_FALSE(cp.layers[2].on_critical_path);
  EXPECT_EQ(cp.critical_layers, (std::vector<int>{0, 1, 3}));
}

TEST(CriticalPath, SerialChainIsFullyCritical) {
  ExecutionTimeline t;
  t.num_streams = 1;
  t.events = {event(0, 0, 0.0, 3.5), event(1, 0, 3.5, 1.25),
              event(2, 0, 4.75, 7.25)};
  t.makespan_ns = 12.0;
  const critpath::Report cp = critpath::analyze(t);
  EXPECT_DOUBLE_EQ(cp.critical_path_ns, 12.0);
  EXPECT_DOUBLE_EQ(cp.serial_sum_ns, 12.0);
  EXPECT_DOUBLE_EQ(cp.parallel_speedup, 1.0);
  EXPECT_EQ(cp.sync_count, 0u);
  for (const critpath::LayerStats& stats : cp.layers) {
    EXPECT_DOUBLE_EQ(stats.slack_ns, 0.0);
    EXPECT_DOUBLE_EQ(stats.criticality, 1.0);
    EXPECT_TRUE(stats.on_critical_path);
  }
  EXPECT_EQ(cp.critical_layers.size(), 3u);
}

TEST(CriticalPath, EmptyTimelineYieldsEmptyReport) {
  const critpath::Report cp = critpath::analyze(ExecutionTimeline{});
  EXPECT_DOUBLE_EQ(cp.critical_path_ns, 0.0);
  EXPECT_TRUE(cp.layers.empty());
  EXPECT_TRUE(cp.critical_layers.empty());
}

// ---------------------------------------------------------------------------
// Real engines: dependency derivation + scheduling across all three sims.

struct BackendCase {
  const char* backend;
  const char* platform;
};

class StreamSchedule : public ::testing::TestWithParam<BackendCase> {
 protected:
  static backends::Engine build(const char* backend, const char* platform,
                                const char* model_id) {
    backends::BuildConfig config;
    const auto& desc = hw::PlatformRegistry::instance().get(platform);
    config.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
    config.batch = 4;
    return backends::BackendRegistry::instance().get(backend).build(
        models::build_model(model_id), config, desc);
  }
};

TEST_P(StreamSchedule, DependenciesPrecedeConsumers) {
  const auto& [backend, platform] = GetParam();
  const backends::Engine engine = build(backend, platform, "resnet18");
  const std::vector<std::vector<int>> deps =
      backends::layer_dependencies(engine);
  ASSERT_EQ(deps.size(), engine.layers().size());
  size_t edges = 0;
  for (size_t i = 0; i < deps.size(); ++i) {
    for (const int dep : deps[i]) {
      EXPECT_GE(dep, 0);
      EXPECT_LT(dep, static_cast<int>(i));
      ++edges;
    }
  }
  // A connected model: every layer but the first has at least one producer.
  EXPECT_GE(edges, deps.size() - 1);
}

// The acceptance invariant: a single-stream timeline's critical path equals
// the serial latency sum to 1e-9 relative tolerance (timestamps are double
// nanoseconds precisely so no rounding accumulates).
TEST_P(StreamSchedule, SerialCriticalPathEqualsLatencySum) {
  const auto& [backend, platform] = GetParam();
  const backends::Engine engine = build(backend, platform, "resnet18");
  const hw::PlatformState state(
      hw::PlatformRegistry::instance().get(platform), {});
  const backends::EngineProfile profile = engine.profile(state, 5);

  const ExecutionTimeline timeline =
      backends::schedule_streams(engine, profile.layer_latency_s, 1);
  EXPECT_EQ(timeline.num_streams, 1);
  EXPECT_TRUE(timeline.syncs.empty());

  double sum_ns = 0.0;
  for (const double latency_s : profile.layer_latency_s) {
    sum_ns += latency_s * 1e9;
  }
  const critpath::Report cp = critpath::analyze(timeline);
  EXPECT_NEAR(cp.critical_path_ns, sum_ns, sum_ns * 1e-9);
  EXPECT_NEAR(timeline.makespan_ns, sum_ns, sum_ns * 1e-9);
  EXPECT_EQ(cp.critical_layers.size(), engine.layers().size());
}

TEST_P(StreamSchedule, MultiStreamRespectsDependenciesAndPolicy) {
  const auto& [backend, platform] = GetParam();
  const backends::Engine engine = build(backend, platform, "resnet18");
  const hw::PlatformState state(
      hw::PlatformRegistry::instance().get(platform), {});
  const backends::EngineProfile profile = engine.profile(state, 5);
  const ExecutionTimeline timeline =
      backends::schedule_streams(engine, profile.layer_latency_s, 0);

  EXPECT_GE(timeline.num_streams, 1);
  EXPECT_LE(timeline.num_streams, engine.stream_policy().max_streams);
  EXPECT_EQ(timeline.lane_name, engine.stream_policy().lane_name);
  ASSERT_EQ(timeline.events.size(), engine.layers().size());

  // Every event starts after all of its recorded dependencies finish.
  std::vector<const TimelineEvent*> by_layer(timeline.events.size(), nullptr);
  for (const TimelineEvent& e : timeline.events) {
    ASSERT_GE(e.layer, 0);
    by_layer[static_cast<size_t>(e.layer)] = &e;
  }
  for (const TimelineEvent& e : timeline.events) {
    for (const int dep : e.deps) {
      ASSERT_NE(by_layer[static_cast<size_t>(dep)], nullptr);
      EXPECT_GE(e.start_ns, by_layer[static_cast<size_t>(dep)]->end_ns() -
                                1e-6)
          << "layer " << e.layer << " started before producer " << dep;
    }
  }
  // Makespan can only shrink versus serial, never grow.
  EXPECT_LE(timeline.makespan_ns, timeline.serial_sum_ns() * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StreamSchedule,
    ::testing::Values(BackendCase{"trt_sim", "a100"},
                      BackendCase{"ov_sim", "xeon6330"},
                      BackendCase{"ort_sim", "a100"}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      return std::string(info.param.backend);
    });

// resnet50's residual downsample branches run concurrently with the main
// path, so at least one layer must pick up strictly positive slack.
TEST(CriticalPathProfile, Resnet50ResidualBranchHasSlack) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  opt.streams = 4;
  const ProfileReport report = Profiler(opt).run_zoo("resnet50");

  ASSERT_TRUE(report.timeline.has_value());
  ASSERT_TRUE(report.critical_path.has_value());
  const critpath::Report& cp = *report.critical_path;
  EXPECT_GT(cp.num_streams, 1);
  EXPECT_GT(cp.sync_count, 0u);

  // Slack + criticality reported for every backend layer.
  ASSERT_EQ(cp.layers.size(), report.layers.size());
  size_t with_slack = 0;
  for (const critpath::LayerStats& stats : cp.layers) {
    EXPECT_GE(stats.slack_ns, 0.0);
    EXPECT_GT(stats.criticality, 0.0);
    EXPECT_LE(stats.criticality, 1.0);
    if (stats.slack_ns > 0.0) {
      ++with_slack;
    }
  }
  EXPECT_GT(with_slack, 0u) << "no layer gained slack from 4 streams";
  EXPECT_LT(cp.critical_path_ns, cp.serial_sum_ns);
  EXPECT_GT(cp.parallel_speedup, 1.0);
  // Criticality is wired into the roofline points for SVG/table ranking.
  ASSERT_EQ(report.roofline.layers.size(), report.layers.size());
  for (const roofline::Point& pt : report.roofline.layers) {
    EXPECT_GE(pt.criticality, 0.0);
    EXPECT_LE(pt.criticality, 1.0);
  }
}

// TSan target: schedule + DAG reconstruction + CPM from several threads over
// one shared built engine (read-only, like parallel sweep workers).  Every
// thread must derive the identical timeline and critical path.
TEST(CriticalPathConcurrency, SharedEngineScheduledFromManyThreads) {
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 4;
  const backends::Engine engine =
      backends::BackendRegistry::instance().get("trt_sim").build(
          models::build_model("resnet18"), config,
          hw::PlatformRegistry::instance().get("a100"));
  const hw::PlatformState state(
      hw::PlatformRegistry::instance().get("a100"), {});
  const backends::EngineProfile profile = engine.profile(state, 5);

  constexpr int kThreads = 4;
  std::vector<critpath::Report> reports(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        const ExecutionTimeline timeline =
            backends::schedule_streams(engine, profile.layer_latency_s, 0);
        reports[static_cast<size_t>(i)] = critpath::analyze(timeline);
      });
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_DOUBLE_EQ(reports[i].critical_path_ns, reports[0].critical_path_ns);
    EXPECT_EQ(reports[i].critical_layers, reports[0].critical_layers);
    EXPECT_EQ(reports[i].sync_count, reports[0].sync_count);
  }
}

TEST(CriticalPathProfile, SerialModeOmitsSection) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  ASSERT_EQ(opt.streams, 1);  // the seed-faithful default
  const ProfileReport report = Profiler(opt).run_zoo("mobilenetv2_05");
  EXPECT_FALSE(report.timeline.has_value());
  EXPECT_FALSE(report.critical_path.has_value());
  for (const roofline::Point& pt : report.roofline.layers) {
    EXPECT_LT(pt.criticality, 0.0);  // sentinel: not computed
  }
}

TEST(CriticalPathProfile, StreamsZeroUsesBackendMaximum) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.backend_id = "trt_sim";
  opt.dtype = DType::kF16;
  opt.batch = 4;
  opt.mode = MetricMode::kPredicted;
  opt.streams = 0;
  const ProfileReport report = Profiler(opt).run_zoo("mobilenetv2_05");
  ASSERT_TRUE(report.timeline.has_value());
  EXPECT_EQ(report.timeline->num_streams, 4);  // trt_sim's policy maximum
}

}  // namespace
}  // namespace proof

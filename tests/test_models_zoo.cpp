// Integration tests: the model zoo against Table 3's published numbers.
#include <gtest/gtest.h>

#include "analysis/analyze_representation.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof::models {
namespace {

struct Table3Row {
  std::string id;
  double params_m;  ///< paper's Params (M)
  double gflop;     ///< paper's GFLOP at bs=1
  double tolerance; ///< acceptable relative deviation
};

class Table3Test : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Test, ParamsAndGflopMatchPaper) {
  const Table3Row& row = GetParam();
  const AnalyzeRepresentation ar(build_model(row.id));
  const double params_m = static_cast<double>(ar.param_count()) / 1e6;
  const double gflop = ar.total_flops() / 1e9;
  EXPECT_LT(proof::testing::rel_diff(params_m, row.params_m), row.tolerance)
      << row.id << ": params " << params_m << "M vs paper " << row.params_m;
  EXPECT_LT(proof::testing::rel_diff(gflop, row.gflop), row.tolerance)
      << row.id << ": " << gflop << " GFLOP vs paper " << row.gflop;
}

INSTANTIATE_TEST_SUITE_P(
    PaperNumbers, Table3Test,
    ::testing::Values(
        Table3Row{"distilbert", 67.0, 48.718, 0.03},
        Table3Row{"sd_unet", 859.5, 4747.726, 0.05},
        Table3Row{"efficientnet_b0", 5.3, 0.851, 0.05},
        Table3Row{"efficientnet_b4", 19.3, 3.209, 0.05},
        Table3Row{"efficientnetv2_t", 13.6, 3.939, 0.05},
        Table3Row{"efficientnetv2_s", 23.9, 6.030, 0.12},
        Table3Row{"mlp_mixer_b16", 59.9, 25.403, 0.03},
        Table3Row{"mobilenetv2_05", 2.0, 0.205, 0.05},
        Table3Row{"mobilenetv2_10", 3.5, 0.621, 0.05},
        Table3Row{"resnet34", 21.8, 7.338, 0.02},
        Table3Row{"resnet50", 25.5, 8.207, 0.02},
        Table3Row{"shufflenetv2_05", 1.4, 0.084, 0.05},
        Table3Row{"shufflenetv2_10", 2.3, 0.294, 0.05},
        Table3Row{"shufflenetv2_10_mod", 2.8, 0.434, 0.05},
        Table3Row{"swin_tiny", 28.8, 9.133, 0.03},
        Table3Row{"swin_small", 50.5, 17.723, 0.03},
        Table3Row{"swin_base", 88.9, 31.183, 0.03},
        Table3Row{"vit_tiny", 5.7, 2.558, 0.03},
        Table3Row{"vit_small", 22.1, 9.298, 0.03},
        Table3Row{"vit_base", 86.6, 35.329, 0.03}));

TEST(Zoo, TwentyModelsInTableOrder) {
  const auto& zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 20u);
  for (size_t i = 0; i < zoo.size(); ++i) {
    EXPECT_EQ(zoo[i].table3_index, static_cast<int>(i) + 1);
    EXPECT_FALSE(zoo[i].display.empty());
  }
}

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW((void)build_model("resnet999"), ConfigError);
  EXPECT_THROW((void)model_spec(""), ConfigError);
}

TEST(Zoo, AllModelsValidateAndAnalyze) {
  for (const ModelSpec& spec : model_zoo()) {
    const Graph g = spec.build();
    EXPECT_NO_THROW(g.validate()) << spec.id;
    const AnalyzeRepresentation ar(g);
    EXPECT_GT(ar.total_flops(), 0.0) << spec.id;
    EXPECT_GT(ar.total_memory().total(), 0.0) << spec.id;
  }
}

TEST(Zoo, ModifiedShuffleNetHasNoShuffleTranspose) {
  // Figure 7: the §4.5 modification removes the Shuffle from regular blocks;
  // only the 3 downsampling blocks keep their Transpose.
  const Graph original = build_model("shufflenetv2_10");
  const Graph modified = build_model("shufflenetv2_10_mod");
  EXPECT_EQ(original.nodes_of_type("Transpose").size(), 16u);
  EXPECT_EQ(modified.nodes_of_type("Transpose").size(), 3u);
  EXPECT_TRUE(modified.nodes_of_type("Split").empty());
  // Residual adds appear instead.
  EXPECT_EQ(modified.nodes_of_type("Add").size(), 13u);
  EXPECT_LT(modified.num_nodes(), original.num_nodes());
}

TEST(Zoo, ShuffleNetModifiedFlopRatioMatchesTable5) {
  // Table 5: 0.294 -> 0.434 GFLOP (x1.48) while params rise 2.27 -> 2.80 M.
  const AnalyzeRepresentation orig(build_model("shufflenetv2_10"));
  const AnalyzeRepresentation mod(build_model("shufflenetv2_10_mod"));
  const double flop_ratio = mod.total_flops() / orig.total_flops();
  EXPECT_NEAR(flop_ratio, 0.434 / 0.294, 0.08);
  EXPECT_GT(mod.param_count(), orig.param_count());
}

TEST(Zoo, PeakProbeStructure) {
  const Graph probe = build_peak_probe();
  EXPECT_NO_THROW(probe.validate());
  EXPECT_GE(probe.nodes_of_type("MatMul").size(), 6u);
  EXPECT_GE(probe.nodes_of_type("Cast").size(), 6u);
}

TEST(Zoo, SwinDeeperThanTiny) {
  EXPECT_GT(build_model("swin_small").num_nodes(),
            build_model("swin_tiny").num_nodes());
}

}  // namespace
}  // namespace proof::models

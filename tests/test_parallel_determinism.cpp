// Determinism and memoization guarantees of the parallel profiling engine:
//  * sweeps produce byte-identical output at any --jobs setting;
//  * the preparation cache changes cost, never results;
//  * plan-level memoization shares fusion plans + mappings across batches.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/prep_cache.hpp"
#include "core/report_json.hpp"
#include "core/sweep.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace proof {
namespace {

ProfileOptions a100_opts() {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.mode = MetricMode::kPredicted;
  return opt;
}

/// Resets the global pool + cache, runs `fn`, restores the default pool.
template <typename F>
auto with_jobs(unsigned jobs, F&& fn) {
  ThreadPool::set_global_jobs(jobs);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();
  auto result = fn();
  ThreadPool::set_global_jobs(0);
  return result;
}

std::string batch_sweep_fingerprint(const BatchSweep& sweep) {
  std::string out;
  for (const BatchPoint& p : sweep.points) {
    out += std::to_string(p.batch) + "|" +
           std::to_string(p.latency_s) + "|" +
           std::to_string(p.throughput_per_s) + "|" +
           std::to_string(p.attained_flops) + "\n";
  }
  out += "optimal=" + std::to_string(sweep.optimal_batch);
  return out;
}

TEST(ParallelDeterminism, BatchSweepIdenticalAcrossJobCounts) {
  const Graph model = models::build_model("resnet50");
  const auto run = [&] {
    return sweep_batches(a100_opts(), model, {1, 4, 16, 64, 256});
  };
  const BatchSweep serial = with_jobs(1, run);
  const BatchSweep parallel = with_jobs(4, run);
  EXPECT_EQ(batch_sweep_fingerprint(serial), batch_sweep_fingerprint(parallel));
  EXPECT_EQ(sweep_text(serial), sweep_text(parallel));
}

TEST(ParallelDeterminism, ZooSweepIdenticalAcrossJobCounts) {
  const std::vector<std::string> ids = {"resnet50", "mobilenetv2_05",
                                        "vit_tiny", "mlp_mixer_b16"};
  ProfileOptions opt = a100_opts();
  opt.batch = 8;
  const auto run = [&] { return sweep_zoo(opt, ids); };
  const ZooSweep serial = with_jobs(1, run);
  const ZooSweep parallel = with_jobs(4, run);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].model_id, parallel.points[i].model_id);
    EXPECT_EQ(serial.points[i].latency_s, parallel.points[i].latency_s);
    EXPECT_EQ(serial.points[i].throughput_per_s,
              parallel.points[i].throughput_per_s);
    EXPECT_EQ(serial.points[i].mapping_coverage,
              parallel.points[i].mapping_coverage);
    EXPECT_EQ(serial.points[i].error, parallel.points[i].error);
  }
  EXPECT_EQ(zoo_sweep_text(serial), zoo_sweep_text(parallel));
}

TEST(ParallelDeterminism, CacheOnAndOffProduceIdenticalReports) {
  const Graph model = models::build_model("vit_tiny");
  ProfileOptions opt = a100_opts();
  opt.batch = 4;

  PrepCache::instance().clear();
  PrepCache::instance().set_enabled(false);
  const std::string uncached = report_to_json(Profiler(opt).run(model));

  PrepCache::instance().set_enabled(true);
  PrepCache::instance().clear();
  // A cold (miss) and a warm (hit) cached run must match each other byte for
  // byte — the warm run reports the cold build's analysis wall time verbatim.
  const ProfileReport cold = Profiler(opt).run(model);
  const ProfileReport warm = Profiler(opt).run(model);
  EXPECT_EQ(report_to_json(cold), report_to_json(warm));

  // Against the uncached path only the measured wall-time field may differ;
  // strip it and require byte identity for everything else.
  const auto strip_timing = [](std::string text) {
    const std::string key = "\"analysis_time_s\"";
    const size_t pos = text.find(key);
    if (pos != std::string::npos) {
      size_t end = text.find('\n', pos);
      end = end == std::string::npos ? text.size() : end;
      text.erase(pos, end - pos);
    }
    return text;
  };
  EXPECT_EQ(strip_timing(uncached), strip_timing(report_to_json(cold)));
  PrepCache::instance().clear();
}

TEST(PrepCache, EngineHitsOnRepeatAndPlanSharingAcrossBatches) {
  const Graph model = models::build_model("resnet50");
  PrepCache::instance().set_enabled(true);
  PrepCache::instance().clear();
  PrepCache::instance().reset_stats();

  ProfileOptions opt = a100_opts();
  opt.batch = 1;
  (void)Profiler(opt).run(model);   // engine miss, plan miss
  (void)Profiler(opt).run(model);   // engine hit
  opt.batch = 8;
  (void)Profiler(opt).run(model);   // engine miss, plan HIT (batch changed)
  opt.clocks.gpu_mhz = 1000.0;
  (void)Profiler(opt).run(model);   // engine hit (clocks don't enter the build)

  const PrepCacheStats stats = PrepCache::instance().stats();
  EXPECT_EQ(stats.engine_misses, 2u);
  EXPECT_EQ(stats.engine_hits, 2u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 1u);
  EXPECT_GT(stats.engine_hit_rate(), 0.0);
  EXPECT_GT(stats.plan_hit_rate(), 0.0);
  EXPECT_GE(PrepCache::instance().size(), 2u);
  PrepCache::instance().clear();
}

TEST(PrepCache, FingerprintSeparatesModelsAndTracksStructure) {
  const Graph a = models::build_model("resnet50");
  const Graph b = models::build_model("mobilenetv2_05");
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(models::build_model("resnet50")));
}

TEST(BatchSweep, RejectsEmptyValidatedCandidates) {
  const Graph model = models::build_model("mobilenetv2_05");
  EXPECT_THROW((void)sweep_batches(a100_opts(), model, {0, -5}), ConfigError);
}

TEST(BatchSweep, DeduplicatesCandidatesKeepingFirst) {
  const Graph model = models::build_model("mobilenetv2_05");
  const BatchSweep sweep = sweep_batches(a100_opts(), model, {4, 4, -1, 2, 4});
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.points[0].batch, 4);
  EXPECT_EQ(sweep.points[1].batch, 2);
}

TEST(SweepText, EmptySweepRendersMessage) {
  const BatchSweep empty;
  EXPECT_NE(sweep_text(empty).find("empty sweep"), std::string::npos);
  const ZooSweep zoo_empty;
  EXPECT_NE(zoo_sweep_text(zoo_empty).find("empty sweep"), std::string::npos);
}

}  // namespace
}  // namespace proof

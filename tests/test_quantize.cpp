// Unit + integration tests: QDQ quantization — transform, runtime folding,
// int8 execution and mapping robustness with runtime-relevant inserted nodes.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/quantize.hpp"
#include "analysis/reference_executor.hpp"
#include "core/profiler.hpp"
#include "mapping/layer_mapping.hpp"
#include "models/zoo.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof {
namespace {

TEST(Quantize, InsertsQdqAroundMatrixOps) {
  Graph g = models::build_model("resnet50");
  const size_t convs = g.nodes_of_type("Conv").size();
  const QuantizeStats stats = quantize_to_qdq(g);
  EXPECT_TRUE(is_qdq_model(g));
  EXPECT_EQ(stats.quantized_anchors, convs + 1);  // + the classifier Gemm
  // Every anchor got a weight DQ; activations share pairs per tensor.
  EXPECT_EQ(stats.int8_params, convs + 1);
  EXPECT_GT(stats.q_nodes, 0u);
  EXPECT_EQ(g.nodes_of_type("QuantizeLinear").size(), stats.q_nodes);
  EXPECT_EQ(g.nodes_of_type("DequantizeLinear").size(), stats.dq_nodes);
  EXPECT_NO_THROW(g.validate());
}

TEST(Quantize, WeightsBecomeInt8) {
  Graph g = proof::testing::small_cnn();
  (void)quantize_to_qdq(g);
  size_t int8_weights = 0;
  for (const auto& [name, desc] : g.tensors()) {
    if (desc.is_param && desc.dtype == DType::kI8) {
      ++int8_weights;
    }
  }
  EXPECT_GT(int8_weights, 0u);
  // Model shrinks: int8 weights are 4x smaller than fp32.
  const Graph fp32 = proof::testing::small_cnn();
  EXPECT_LT(g.param_bytes(), fp32.param_bytes());
}

TEST(Quantize, DoubleQuantizationRejected) {
  Graph g = proof::testing::small_cnn();
  (void)quantize_to_qdq(g);
  EXPECT_THROW((void)quantize_to_qdq(g), Error);
}

TEST(Quantize, SharedActivationGetsOnePair) {
  // Two convs consuming the same tensor share one Q/DQ pair.
  models::GraphBuilder b("shared");
  const std::string x = b.input("x", Shape{1, 4, 8, 8});
  const std::string a = b.conv(x, 8, 3, 1);
  const std::string c = b.conv(x, 8, 3, 1);
  Graph g = b.finish({a, c});
  const QuantizeStats stats = quantize_to_qdq(g);
  EXPECT_EQ(stats.quantized_anchors, 2u);
  EXPECT_EQ(stats.q_nodes, 1u);          // one shared activation pair
  EXPECT_EQ(stats.dq_nodes, 1u + 2u);    // + one per weight
}

TEST(Quantize, BackendsFoldAllQdqNodes) {
  Graph model = models::build_model("resnet50");
  (void)quantize_to_qdq(model);
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  for (const char* backend_id : {"trt_sim", "ov_sim", "ort_sim"}) {
    backends::BuildConfig config;
    config.dtype = DType::kF16;
    config.batch = 4;
    const backends::Engine engine =
        backends::BackendRegistry::instance().get(backend_id).build(model, config,
                                                                    a100);
    for (const backends::BackendLayer& layer : engine.layers()) {
      // No standalone Q/DQ layers survive folding.
      if (layer.truth_nodes.size() == 1) {
        const std::string& only = layer.truth_nodes.front();
        EXPECT_EQ(only.find("_q"), std::string::npos)
            << backend_id << " left standalone QDQ layer " << layer.name;
      }
    }
  }
}

TEST(Quantize, FoldedConvKernelsRunInt8) {
  Graph model = proof::testing::small_cnn();
  (void)quantize_to_qdq(model);
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  backends::BuildConfig config;
  config.dtype = DType::kF16;
  const backends::Engine engine =
      backends::BackendRegistry::instance().get("trt_sim").build(model, config, a100);
  size_t int8_kernels = 0;
  for (const hw::KernelWork& k : engine.all_kernels()) {
    if (k.dtype == DType::kI8) {
      ++int8_kernels;
    }
  }
  EXPECT_GT(int8_kernels, 0u);
}

TEST(Quantize, Int8FasterThanFp16OnTensorCores) {
  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = 128;
  opt.mode = MetricMode::kPredicted;
  const ProfileReport fp16 = Profiler(opt).run_zoo("resnet50");
  Graph quantized = models::build_model("resnet50");
  (void)quantize_to_qdq(quantized);
  const ProfileReport int8 = Profiler(opt).run(quantized);
  EXPECT_LT(int8.total_latency_s, fp16.total_latency_s);
}

TEST(Quantize, MappingSurvivesQdqInsertion) {
  Graph model = models::build_model("shufflenetv2_10");
  (void)quantize_to_qdq(model);
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");
  for (const char* backend_id : {"trt_sim", "ov_sim", "ort_sim"}) {
    backends::BuildConfig config;
    config.dtype = DType::kF16;
    config.batch = 4;
    const backends::Engine engine =
        backends::BackendRegistry::instance().get(backend_id).build(model, config,
                                                                    a100);
    const AnalyzeRepresentation ar(engine.analysis_graph());
    OptimizedAnalyzeRepresentation oar(ar);
    const mapping::LayerMapping map = mapping::map_layers(engine, oar);
    EXPECT_EQ(mapping::verify_against_truth(map, engine), 0u) << backend_id;
    EXPECT_DOUBLE_EQ(map.node_coverage(ar.num_nodes()), 1.0) << backend_id;
  }
}

TEST(Quantize, ReferenceRoundTripApproximatesIdentity) {
  // Q then DQ at scale s reproduces values on the int8 grid.
  models::GraphBuilder b("qdq");
  const std::string x = b.input("x", Shape{4});
  const std::string scale = b.param("s", Shape{1});
  const std::string q = b.node("QuantizeLinear", {x, scale});
  const std::string dq = b.node("DequantizeLinear", {q, scale});
  const Graph g = b.finish({dq});
  const ReferenceExecutor exec(g);
  std::map<std::string, Tensor> feeds;
  feeds.emplace("x", Tensor(Shape{4}, {0.1f, -0.25f, 0.5f, 1.0f}));
  auto values = exec.run(feeds);
  const float s = values.at(scale).at(0);
  for (int i = 0; i < 4; ++i) {
    const float original = feeds.at("x").at(i);
    const float expected =
        std::min(127.0f, std::max(-128.0f, std::round(original / s))) * s;
    EXPECT_NEAR(values.at(dq).at(i), expected, 1e-6);
  }
}

}  // namespace
}  // namespace proof

// Property/fuzz harness for the guarded optimization loop (ISSUE 8).
//
// The guard's contract — the loop NEVER accepts a variant whose measured
// objective is worse than the incumbent's under the documented order — is
// proved here by construction, not by example: hundreds of randomized runs
// with scripted and adversarial VariantSources (including one whose every
// proposal regresses) check the invariants on every loop output.
//
// Invariants checked on every run, whatever the source does:
//   I1 an accepted variant strictly improves on the incumbent it replaced
//      (feasibility-dominant order, noise threshold included);
//   I2 the accepted chain is monotonically improving end to end;
//   I3 an infeasible variant is never accepted;
//   I4 the always-regress adversary gets nothing accepted, ever;
//   I5 the recorded log is internally consistent (per-round accepted ids,
//      counters, deltas, final == last accepted or baseline).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "opt/guard.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace proof::opt {
namespace {

BottleneckReport fake_classification() {
  BottleneckReport cls;
  cls.kind = Bottleneck::kBandwidth;
  cls.compute_share = 0.2;
  cls.bandwidth_share = 0.6;
  cls.reorder_share = 0.2;
  cls.overhead_share = 0.05;
  return cls;
}

Variant make_variant(const std::string& id) {
  Variant v;
  v.id = id;
  v.axis = "scripted";
  v.description = "scripted variant";
  return v;
}

/// A scripted source: a fixed table of measurements keyed by variant id,
/// proposals drawn from that table in a caller-chosen (possibly shuffled)
/// order, round by round.
class ScriptedSource : public VariantSource {
 public:
  struct Round {
    std::vector<std::string> ids;
  };

  ScriptedSource(std::map<std::string, Measurement> table,
                 std::vector<Round> rounds)
      : table_(std::move(table)), rounds_(std::move(rounds)) {}

  [[nodiscard]] BottleneckReport classify_incumbent() override {
    return fake_classification();
  }

  [[nodiscard]] std::vector<Variant> propose(
      int round, const Measurement& /*incumbent*/) override {
    std::vector<Variant> out;
    if (static_cast<size_t>(round) < rounds_.size()) {
      for (const std::string& id : rounds_[static_cast<size_t>(round)].ids) {
        out.push_back(make_variant(id));
      }
    }
    return out;
  }

  [[nodiscard]] Measurement measure(const Variant& variant) override {
    const auto it = table_.find(variant.id);
    if (it == table_.end()) {
      Measurement m;
      m.feasible = false;
      m.note = "unknown variant";
      return m;
    }
    return it->second;
  }

  void on_accept(const Variant& variant) override {
    accepted_.push_back(variant.id);
  }

  [[nodiscard]] const std::vector<std::string>& accepted() const {
    return accepted_;
  }

 private:
  std::map<std::string, Measurement> table_;
  std::vector<Round> rounds_;
  std::vector<std::string> accepted_;
};

/// Adversary: every proposal measures WORSE than the incumbent (or
/// infeasible).  Nothing it offers may ever be accepted (I4).
class AlwaysRegressSource : public VariantSource {
 public:
  AlwaysRegressSource(uint64_t seed, double baseline_score)
      : rng_(seed), incumbent_score_(baseline_score) {}

  [[nodiscard]] BottleneckReport classify_incumbent() override {
    return fake_classification();
  }

  [[nodiscard]] std::vector<Variant> propose(
      int round, const Measurement& incumbent) override {
    incumbent_score_ = incumbent.score;
    std::vector<Variant> out;
    const size_t n = 1 + rng_.next_below(8);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(
          make_variant("regress-" + std::to_string(round) + "-" +
                       std::to_string(i)));
    }
    return out;
  }

  [[nodiscard]] Measurement measure(const Variant& variant) override {
    // Deterministic per-variant draw (measure() runs concurrently; the
    // member rng_ must not be shared across threads).
    Rng rng = Rng::from_string(variant.id, 17);
    Measurement m;
    if (rng.next_double() < 0.25) {
      m.feasible = false;  // infeasible AND nominally "better": still barred
      m.score = incumbent_score_ * rng.uniform(0.1, 0.9);
      m.note = "adversarial infeasible";
      return m;
    }
    // Worse than the incumbent, sometimes inside the noise band (equal or
    // marginally better than threshold) — never a guard-clearing improvement.
    m.score = incumbent_score_ * rng.uniform(1.0 - 0.0199, 3.0);
    return m;
  }

  void on_accept(const Variant&) override { ++accepted_count_; }

  [[nodiscard]] int accepted_count() const { return accepted_count_; }

 private:
  Rng rng_;
  double incumbent_score_;
  int accepted_count_ = 0;
};

/// Fuzz source: random mix of improvements, regressions, noise-band ties and
/// infeasible points, deterministic per seed + variant id.
class FuzzSource : public VariantSource {
 public:
  explicit FuzzSource(uint64_t seed) : seed_(seed), rng_(seed) {}

  [[nodiscard]] BottleneckReport classify_incumbent() override {
    return fake_classification();
  }

  [[nodiscard]] std::vector<Variant> propose(
      int round, const Measurement& incumbent) override {
    incumbent_score_ = incumbent.score;
    incumbent_feasible_ = incumbent.feasible;
    std::vector<Variant> out;
    const size_t n = rng_.next_below(10);  // sometimes zero: ends the loop
    for (size_t i = 0; i < n; ++i) {
      out.push_back(make_variant("fuzz-" + std::to_string(seed_) + "-" +
                                 std::to_string(round) + "-" +
                                 std::to_string(i)));
    }
    return out;
  }

  [[nodiscard]] Measurement measure(const Variant& variant) override {
    Rng rng = Rng::from_string(variant.id, seed_);
    Measurement m;
    m.feasible = rng.next_double() > 0.3;
    // Anywhere from a 70% improvement to a 2x regression.
    m.score = incumbent_score_ * rng.uniform(0.3, 2.0);
    if (!m.feasible) {
      m.note = "fuzz infeasible";
    }
    return m;
  }

 private:
  uint64_t seed_;
  Rng rng_;
  double incumbent_score_ = 1.0;
  bool incumbent_feasible_ = true;
};

Measurement feasible_measurement(double score) {
  Measurement m;
  m.feasible = true;
  m.score = score;
  m.latency_s = score;
  m.power_w = 100.0;
  m.throughput_per_s = 1.0 / score;
  return m;
}

/// I1/I2/I3/I5: structural invariants every OptimizationLog must satisfy,
/// independent of what the source did.
void check_invariants(const OptimizationLog& log, const GuardConfig& config) {
  Measurement incumbent = log.baseline;
  size_t accepted_seen = 0;
  size_t evaluated = 0;
  std::vector<std::string> chain;

  for (const RoundLog& round : log.rounds) {
    int accepted_in_round = 0;
    for (const VariantResult& v : round.variants) {
      ++evaluated;
      if (v.accepted) {
        ++accepted_in_round;
        // I3: never an infeasible acceptance.
        EXPECT_TRUE(v.measurement.feasible)
            << v.variant.id << " accepted while infeasible";
        // I1: the guard held against the round's incumbent.
        EXPECT_TRUE(guard_improves(v.measurement, incumbent,
                                   config.noise_threshold))
            << v.variant.id << " accepted without clearing the guard";
        // The accepted candidate is the BEST improving one of its round.
        for (const VariantResult& other : round.variants) {
          if (&other != &v &&
              guard_improves(other.measurement, incumbent,
                             config.noise_threshold)) {
            EXPECT_FALSE(guard_better(other.measurement, v.measurement))
                << other.variant.id << " was strictly better than accepted "
                << v.variant.id;
          }
        }
        EXPECT_EQ(round.accepted_id, v.variant.id);
        chain.push_back(v.variant.id);
        incumbent = v.measurement;
        ++accepted_seen;
      }
    }
    // At most one acceptance per round; none -> empty accepted_id.
    EXPECT_LE(accepted_in_round, 1);
    if (accepted_in_round == 0) {
      EXPECT_TRUE(round.accepted_id.empty());
    }
  }

  // I2: the chain is monotonically improving — replay proves each accepted
  // measurement improved on its predecessor, so scores (once feasible) only
  // go down, and feasibility never regresses from feasible to infeasible.
  EXPECT_EQ(chain, log.accepted_chain);
  EXPECT_EQ(accepted_seen, log.variants_accepted);
  EXPECT_EQ(evaluated, log.variants_evaluated);

  // I5: the final measurement is the last accepted one (or the baseline).
  EXPECT_EQ(incumbent.feasible, log.final_best.feasible);
  EXPECT_DOUBLE_EQ(incumbent.score, log.final_best.score);
  if (log.baseline.feasible) {
    // A feasible baseline is never traded for something worse.
    EXPECT_TRUE(log.final_best.feasible);
    EXPECT_LE(log.final_best.score, log.baseline.score);
  }
}

GuardConfig config_with(double noise, int rounds) {
  GuardConfig config;
  config.noise_threshold = noise;
  config.max_rounds = rounds;
  return config;
}

TEST(OptGuard, AcceptsOnlyClearImprovement) {
  std::map<std::string, Measurement> table;
  table["big-win"] = feasible_measurement(0.5);
  table["noise-band"] = feasible_measurement(0.99);  // inside 2% noise
  table["worse"] = feasible_measurement(1.5);
  ScriptedSource source(table, {{{"noise-band", "worse", "big-win"}}});

  const OptimizationLog log =
      run_guarded_loop(source, feasible_measurement(1.0), config_with(0.02, 3));
  check_invariants(log, config_with(0.02, 3));
  ASSERT_EQ(log.accepted_chain, std::vector<std::string>{"big-win"});
  EXPECT_DOUBLE_EQ(log.final_best.score, 0.5);
  EXPECT_EQ(log.variants_evaluated, 3u);
}

TEST(OptGuard, NoiseBandImprovementIsRejected) {
  std::map<std::string, Measurement> table;
  table["tiny-win"] = feasible_measurement(0.985);  // 1.5% < 2% threshold
  ScriptedSource source(table, {{{"tiny-win"}}});

  const OptimizationLog log =
      run_guarded_loop(source, feasible_measurement(1.0), config_with(0.02, 3));
  check_invariants(log, config_with(0.02, 3));
  EXPECT_TRUE(log.accepted_chain.empty());
  EXPECT_DOUBLE_EQ(log.final_best.score, 1.0);
}

TEST(OptGuard, FeasibilityDominatesScore) {
  // Infeasible baseline: a feasible-but-slower variant must win (§4.6).
  std::map<std::string, Measurement> table;
  Measurement feasible_slow = feasible_measurement(2.0);
  Measurement infeasible_fast = feasible_measurement(0.1);
  infeasible_fast.feasible = false;
  table["feasible-slow"] = feasible_slow;
  table["infeasible-fast"] = infeasible_fast;
  ScriptedSource source(table, {{{"infeasible-fast", "feasible-slow"}}});

  Measurement baseline = feasible_measurement(1.0);
  baseline.feasible = false;
  const OptimizationLog log =
      run_guarded_loop(source, baseline, config_with(0.02, 2));
  check_invariants(log, config_with(0.02, 2));
  ASSERT_EQ(log.accepted_chain, std::vector<std::string>{"feasible-slow"});
  EXPECT_TRUE(log.final_best.feasible);
}

TEST(OptGuard, TieKeepsEarliestProposal) {
  std::map<std::string, Measurement> table;
  table["first"] = feasible_measurement(0.5);
  table["second"] = feasible_measurement(0.5);
  ScriptedSource source(table, {{{"first", "second"}}});

  const OptimizationLog log =
      run_guarded_loop(source, feasible_measurement(1.0), config_with(0.02, 1));
  ASSERT_EQ(log.accepted_chain, std::vector<std::string>{"first"});
}

TEST(OptGuard, ZeroRoundsEvaluatesNothing) {
  ScriptedSource source({}, {});
  const OptimizationLog log =
      run_guarded_loop(source, feasible_measurement(1.0), config_with(0.02, 0));
  EXPECT_TRUE(log.rounds.empty());
  EXPECT_EQ(log.variants_evaluated, 0u);
  EXPECT_DOUBLE_EQ(log.final_best.score, 1.0);
}

TEST(OptGuard, AlwaysRegressAdversaryNeverGetsAccepted) {
  // I4 across 128 seeds: whatever mix of regressions, noise-band teases and
  // "infeasible but nominally faster" points the adversary produces, the
  // guard accepts nothing and the baseline survives untouched.
  for (uint64_t seed = 0; seed < 128; ++seed) {
    AlwaysRegressSource source(seed, 1.0);
    const GuardConfig config = config_with(0.02, 6);
    const OptimizationLog log =
        run_guarded_loop(source, feasible_measurement(1.0), config);
    check_invariants(log, config);
    EXPECT_EQ(source.accepted_count(), 0) << "seed " << seed;
    EXPECT_TRUE(log.accepted_chain.empty()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(log.final_best.score, 1.0) << "seed " << seed;
    // The loop stops after the first barren round — no acceptance, no
    // further rounds (bounded work against a hostile source).
    EXPECT_LE(log.rounds.size(), 1u) << "seed " << seed;
  }
}

TEST(OptGuard, FuzzedSourcesAlwaysSatisfyInvariants) {
  // The main property sweep: 160 randomized runs x randomized noise
  // thresholds and round budgets, invariants checked on every log.
  size_t accepted_total = 0;
  for (uint64_t seed = 1; seed <= 160; ++seed) {
    Rng knobs(seed * 7919);
    const double noise = knobs.uniform(0.0, 0.2);
    const int rounds = 1 + static_cast<int>(knobs.next_below(6));
    const GuardConfig config = config_with(noise, rounds);

    FuzzSource source(seed);
    Measurement baseline = feasible_measurement(knobs.uniform(0.5, 2.0));
    baseline.feasible = knobs.next_double() > 0.2;
    const OptimizationLog log = run_guarded_loop(source, baseline, config);
    check_invariants(log, config);
    accepted_total += log.variants_accepted;
  }
  // Sanity: the property is not vacuous — plenty of runs DID accept variants.
  EXPECT_GT(accepted_total, 50u);
}

TEST(OptGuard, ShuffledProposalOrderNeverChangesTheWinner) {
  // Proposal order must not affect WHICH measurement wins (only tie-breaks
  // between exactly-equal scores, which this table avoids).
  std::map<std::string, Measurement> table;
  table["a"] = feasible_measurement(0.9);
  table["b"] = feasible_measurement(0.4);
  table["c"] = feasible_measurement(0.7);
  Measurement infeasible = feasible_measurement(0.2);
  infeasible.feasible = false;
  table["d"] = infeasible;

  std::vector<std::string> ids = {"a", "b", "c", "d"};
  std::sort(ids.begin(), ids.end());
  do {
    ScriptedSource source(table, {{ids}});
    const OptimizationLog log = run_guarded_loop(
        source, feasible_measurement(1.0), config_with(0.02, 1));
    ASSERT_EQ(log.accepted_chain, std::vector<std::string>{"b"})
        << "order: " << ids[0] << ids[1] << ids[2] << ids[3];
    EXPECT_DOUBLE_EQ(log.final_best.score, 0.4);
  } while (std::next_permutation(ids.begin(), ids.end()));
}

TEST(OptGuard, MultiRoundChainIsMonotone) {
  std::map<std::string, Measurement> table;
  table["r0-win"] = feasible_measurement(0.8);
  table["r0-lose"] = feasible_measurement(1.2);
  table["r1-win"] = feasible_measurement(0.6);
  table["r1-noise"] = feasible_measurement(0.79);
  table["r2-lose"] = feasible_measurement(0.9);
  ScriptedSource source(table, {{{"r0-win", "r0-lose"}},
                                {{"r1-win", "r1-noise"}},
                                {{"r2-lose"}}});

  const GuardConfig config = config_with(0.02, 5);
  const OptimizationLog log =
      run_guarded_loop(source, feasible_measurement(1.0), config);
  check_invariants(log, config);
  const std::vector<std::string> expected = {"r0-win", "r1-win"};
  EXPECT_EQ(log.accepted_chain, expected);
  EXPECT_EQ(source.accepted(), expected);
  // Round 3 (all regressions) ended the loop.
  EXPECT_EQ(log.rounds.size(), 3u);
  EXPECT_DOUBLE_EQ(log.final_best.score, 0.6);
}

TEST(OptGuard, ParallelMeasurementMatchesSerial) {
  // The guard property holds at any job count AND the recorded log is
  // identical — measurement runs on the pool, acceptance stays serial.
  const auto run = [](unsigned jobs) {
    ThreadPool::set_global_jobs(jobs);
    FuzzSource source(42);
    const OptimizationLog log = run_guarded_loop(
        source, feasible_measurement(1.0), config_with(0.02, 4));
    ThreadPool::set_global_jobs(0);
    return log;
  };
  const OptimizationLog serial = run(1);
  const OptimizationLog parallel = run(8);
  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  EXPECT_EQ(serial.accepted_chain, parallel.accepted_chain);
  for (size_t r = 0; r < serial.rounds.size(); ++r) {
    ASSERT_EQ(serial.rounds[r].variants.size(),
              parallel.rounds[r].variants.size());
    for (size_t i = 0; i < serial.rounds[r].variants.size(); ++i) {
      EXPECT_EQ(serial.rounds[r].variants[i].variant.id,
                parallel.rounds[r].variants[i].variant.id);
      EXPECT_DOUBLE_EQ(serial.rounds[r].variants[i].measurement.score,
                       parallel.rounds[r].variants[i].measurement.score);
      EXPECT_EQ(serial.rounds[r].variants[i].accepted,
                parallel.rounds[r].variants[i].accepted);
    }
  }
}

TEST(OptGuard, GuardPredicateTotalOrderProperties) {
  // guard_better is a strict weak ordering over randomized measurements;
  // guard_improves is consistent with it (an improvement is always better).
  Rng rng(2026);
  std::vector<Measurement> points;
  for (int i = 0; i < 64; ++i) {
    Measurement m = feasible_measurement(rng.uniform(0.1, 3.0));
    m.feasible = rng.next_double() > 0.3;
    points.push_back(m);
  }
  for (const Measurement& a : points) {
    EXPECT_FALSE(guard_better(a, a));  // irreflexive
    for (const Measurement& b : points) {
      if (guard_better(a, b)) {
        EXPECT_FALSE(guard_better(b, a));  // asymmetric
      }
      if (guard_improves(a, b, 0.0) && a.score != b.score) {
        EXPECT_TRUE(guard_better(a, b));
      }
      // With any threshold, improving on a feasible incumbent implies a
      // strictly lower score — never equal, never higher.
      if (b.feasible && guard_improves(a, b, 0.02)) {
        EXPECT_LT(a.score, b.score);
      }
    }
  }
}

}  // namespace
}  // namespace proof::opt

// Unit tests: platform registry, latency model, DVFS state and power model.
#include <gtest/gtest.h>

#include <algorithm>

#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "hw/power.hpp"
#include "support/error.hpp"
#include "test_util.hpp"

namespace proof::hw {
namespace {

TEST(PlatformRegistry, SevenPaperPlatforms) {
  auto& reg = PlatformRegistry::instance();
  EXPECT_EQ(paper_platform_ids().size(), 7u);
  for (const std::string& id : paper_platform_ids()) {
    EXPECT_TRUE(reg.contains(id)) << id;
    const PlatformDesc& p = reg.get(id);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.dram_bw, 0.0);
    EXPECT_GT(p.gpu_clock.nominal_mhz, 0.0);
  }
  // h100 is registered for the LLM decode sweeps but stays out of the paper
  // platform list, so paper-table benches are unaffected.
  EXPECT_TRUE(reg.contains("h100"));
  const auto& paper = paper_platform_ids();
  EXPECT_EQ(std::count(paper.begin(), paper.end(), "h100"), 0);
  EXPECT_THROW((void)reg.get("no_such_platform"), ConfigError);
}

TEST(PlatformDesc, A100PeaksMatchDatasheet) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  EXPECT_DOUBLE_EQ(a100.matrix_peak(DType::kF16), 312e12);
  EXPECT_DOUBLE_EQ(a100.matrix_peak(DType::kI8), 624e12);
  EXPECT_DOUBLE_EQ(a100.dram_bw, 1555e9);
  EXPECT_TRUE(a100.has_counter_profiler);
}

TEST(PlatformDesc, CpuFallsBackToVectorPipeline) {
  const PlatformDesc& xeon = PlatformRegistry::instance().get("xeon6330");
  // No matrix engine: matrix_peak falls back to the vector pipeline.
  EXPECT_DOUBLE_EQ(xeon.matrix_peak(DType::kF32), xeon.vector_peak(DType::kF32));
  EXPECT_FALSE(xeon.supports(DType::kBF16));
  EXPECT_THROW((void)xeon.vector_peak(DType::kBF16), Error);
}

TEST(PlatformState, ClocksSnapToAvailableSteps) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting clocks;
  clocks.gpu_mhz = 600.0;  // nearest available step is 612
  clocks.mem_mhz = 2200.0;  // nearest is 2133
  const PlatformState state(orin, clocks);
  EXPECT_DOUBLE_EQ(state.gpu_mhz(), 612.0);
  EXPECT_DOUBLE_EQ(state.mem_mhz(), 2133.0);
}

TEST(PlatformState, DefaultsToNominal) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  const PlatformState state(orin);
  EXPECT_DOUBLE_EQ(state.gpu_scale(), 1.0);
  EXPECT_DOUBLE_EQ(state.mem_scale(), 1.0);
  EXPECT_EQ(state.active_cpu_clusters(), 2);
}

TEST(PlatformState, CpuClusterOff) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting clocks;
  clocks.cpu_cluster_mhz = {729.0, 0.0};
  EXPECT_EQ(PlatformState(orin, clocks).active_cpu_clusters(), 1);
  ClockSetting bad;
  bad.cpu_cluster_mhz = {729.0};  // wrong cluster count
  EXPECT_THROW(PlatformState(orin, bad), Error);
}

KernelWork gemm_kernel(double flops, double bytes) {
  KernelWork k;
  k.name = "k";
  k.cls = OpClass::kGemm;
  k.dtype = DType::kF16;
  k.hw_flops = flops;
  k.matrix_flops = flops;
  k.bytes = bytes;
  return k;
}

TEST(LatencyModel, RooflineMaxForm) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const LatencyModel model{PlatformState(a100)};
  // Huge compute-bound kernel.
  const KernelTiming tc = model.time_kernel(gemm_kernel(1e13, 1e6));
  EXPECT_FALSE(tc.memory_bound);
  EXPECT_GT(tc.compute_s, tc.memory_s);
  // Huge memory-bound kernel.
  const KernelTiming tm = model.time_kernel(gemm_kernel(1e6, 1e10));
  EXPECT_TRUE(tm.memory_bound);
  EXPECT_NEAR(tm.latency_s, a100.kernel_overhead_s + tm.memory_s, 1e-12);
}

TEST(LatencyModel, MonotonicInWork) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const LatencyModel model{PlatformState(a100)};
  double prev = 0.0;
  for (const double flops : {1e6, 1e8, 1e10, 1e12}) {
    const double t = model.time_kernel(gemm_kernel(flops, 1e6)).latency_s;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LatencyModel, TinyKernelsDominatedByOverhead) {
  const PlatformDesc& a100 = PlatformRegistry::instance().get("a100");
  const LatencyModel model{PlatformState(a100)};
  const KernelTiming t = model.time_kernel(gemm_kernel(1e3, 1e3));
  EXPECT_LT(t.latency_s, 3.0 * a100.kernel_overhead_s);
  EXPECT_GE(t.latency_s, a100.kernel_overhead_s);
}

TEST(LatencyModel, GpuClockScalesCompute) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting half;
  half.gpu_mhz = 510.0;
  const LatencyModel full{PlatformState(orin)};
  const LatencyModel slow{PlatformState(orin, half)};
  const KernelWork k = gemm_kernel(1e12, 1e6);
  const double ratio =
      slow.time_kernel(k).compute_s / full.time_kernel(k).compute_s;
  EXPECT_NEAR(ratio, 918.0 / 510.0, 1e-9);
}

TEST(LatencyModel, MemClockScalesBandwidth) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting low;
  low.mem_mhz = 2133.0;
  const LatencyModel full{PlatformState(orin)};
  const LatencyModel slow{PlatformState(orin, low)};
  EXPECT_NEAR(slow.achieved_bandwidth() / full.achieved_bandwidth(),
              2133.0 / 3199.0, 1e-9);
}

TEST(LatencyModel, CopyEngineCapCouplesBwToGpuClock) {
  // Table 6's #1 vs #3: dropping the GPU clock at full memory clock drops
  // the achieved bandwidth too (copy kernels run on the SMs).
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting slow_gpu;
  slow_gpu.gpu_mhz = 510.0;
  const LatencyModel full{PlatformState(orin)};
  const LatencyModel slow{PlatformState(orin, slow_gpu)};
  EXPECT_LT(slow.achieved_bandwidth(), full.achieved_bandwidth());
  // Calibration anchors from Table 6 (GB/s): 87.9 at 918/3199, ~54 at 510.
  EXPECT_NEAR(full.achieved_bandwidth() / 1e9, 87.9, 1.5);
  EXPECT_NEAR(slow.achieved_bandwidth() / 1e9, 54.0, 1.5);
}

TEST(LatencyModel, AchievedComputePeakMatchesTable6) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  const LatencyModel full{PlatformState(orin)};
  EXPECT_NEAR(full.achieved_compute_peak(DType::kF16) / 1e12, 13.62, 0.4);
  ClockSetting slow;
  slow.gpu_mhz = 510.0;
  const LatencyModel half{PlatformState(orin, slow)};
  EXPECT_NEAR(half.achieved_compute_peak(DType::kF16) / 1e12, 7.43, 0.4);
}

TEST(LatencyModel, DepthwiseLessEfficientThanGemm) {
  EXPECT_LT(LatencyModel::class_compute_eff(OpClass::kConvDepthwise),
            LatencyModel::class_compute_eff(OpClass::kGemm));
  EXPECT_LT(LatencyModel::class_memory_eff(OpClass::kDataMovement),
            LatencyModel::class_memory_eff(OpClass::kCopy));
  EXPECT_FALSE(LatencyModel::uses_matrix_pipeline(OpClass::kConvDepthwise));
  EXPECT_TRUE(LatencyModel::uses_matrix_pipeline(OpClass::kGemm));
}

TEST(PowerModel, Fv2ScalesSuperlinearly) {
  // Halving the clock saves more than half the dynamic power (V drops too).
  const double full = PowerModel::fv2(1.0, 0.7);
  const double half = PowerModel::fv2(0.5, 0.7);
  EXPECT_DOUBLE_EQ(full, 1.0);
  EXPECT_LT(half, 0.5);
  EXPECT_GT(half, 0.0);
}

TEST(PowerModel, MonotonicInUtilizationAndClocks) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  const PowerModel full{PlatformState(orin)};
  EXPECT_LT(full.power_w({0.2, 0.2}), full.power_w({0.9, 0.9}));
  ClockSetting slow;
  slow.gpu_mhz = 510.0;
  slow.mem_mhz = 2133.0;
  const PowerModel low{PlatformState(orin, slow)};
  EXPECT_LT(low.power_w({1.0, 1.0}), full.power_w({1.0, 1.0}));
}

TEST(PowerModel, CalibratedAgainstTable6) {
  // Peak-test power anchors (W): full-load runs at five clock pairs.
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  const Utilization busy{1.0, 1.0};
  const auto power_at = [&](double gpu, double mem) {
    ClockSetting clocks;
    clocks.gpu_mhz = gpu;
    clocks.mem_mhz = mem;
    clocks.cpu_cluster_mhz = {729.0, 729.0};
    return PowerModel(PlatformState(orin, clocks)).power_w(busy);
  };
  EXPECT_NEAR(power_at(918, 3199), 23.6, 1.5);
  EXPECT_NEAR(power_at(918, 2133), 21.3, 1.5);
  EXPECT_NEAR(power_at(510, 3199), 15.7, 1.5);
  EXPECT_NEAR(power_at(510, 2133), 13.6, 1.5);
  EXPECT_NEAR(power_at(510, 665), 11.5, 1.5);
}

TEST(PowerModel, CpuClusterOffSavesPower) {
  const PlatformDesc& orin = PlatformRegistry::instance().get("orin_nx16");
  ClockSetting on;
  on.cpu_cluster_mhz = {729.0, 729.0};
  ClockSetting off;
  off.cpu_cluster_mhz = {729.0, 0.0};
  const Utilization u{0.5, 0.5};
  EXPECT_GT(PowerModel(PlatformState(orin, on)).power_w(u),
            PowerModel(PlatformState(orin, off)).power_w(u));
}

}  // namespace
}  // namespace proof::hw

// Unit + property tests: the analytical FLOP model (paper §3.2.1).
//
// Each case checks the operator's predicted FLOP against the closed-form
// expression, including the MAC = 2 FLOP convention.
#include <gtest/gtest.h>

#include "models/builder.hpp"
#include "models/zoo.hpp"
#include "ops/op_def.hpp"

namespace proof {
namespace {

using models::GraphBuilder;

/// FLOP of the last node added for tensor `out`.
double flops_of(const Graph& g, const std::string& out) {
  const NodeId id = g.producer(out);
  const Node& node = g.node(id);
  return op_def_for(node).flops(OpContext(g, node));
}

struct ConvFlopCase {
  int64_t n, cin, h, cout, k, s, groups;
};

class ConvFlopTest : public ::testing::TestWithParam<ConvFlopCase> {};

TEST_P(ConvFlopTest, MatchesClosedForm) {
  const auto& c = GetParam();
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{c.n, c.cin, c.h, c.h});
  const std::string y = b.conv(x, c.cout, c.k, c.s, -1, c.groups, /*bias=*/false);
  const int64_t ho = b.dim(y, 2);
  const double expected = 2.0 * c.n * c.cout * ho * ho *
                          (static_cast<double>(c.cin) / c.groups) * c.k * c.k;
  const Graph g = b.finish({y});
  EXPECT_DOUBLE_EQ(flops_of(g, y), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, ConvFlopTest,
    ::testing::Values(ConvFlopCase{1, 3, 224, 64, 7, 2, 1},
                      ConvFlopCase{8, 64, 56, 64, 3, 1, 1},
                      ConvFlopCase{1, 128, 28, 128, 3, 1, 128},   // depthwise
                      ConvFlopCase{4, 116, 28, 58, 1, 1, 1},      // pointwise
                      ConvFlopCase{2, 32, 16, 64, 5, 2, 2}));     // grouped

TEST(OpFlops, ConvBiasAddsOneFlopPerOutput) {
  GraphBuilder b("g");
  const std::string x = b.input("in", Shape{1, 4, 8, 8});
  const std::string no_bias = b.conv(x, 8, 3, 1, -1, 1, false);
  const std::string with_bias = b.conv(x, 8, 3, 1, -1, 1, true);
  const Graph g = b.finish({no_bias, with_bias});
  EXPECT_DOUBLE_EQ(flops_of(g, with_bias) - flops_of(g, no_bias), 8.0 * 8 * 8);
}

TEST(OpFlops, GemmAndMatMul) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{32, 128});
  const std::string y = b.linear(x, 64, /*bias=*/false);  // Gemm
  const std::string a3 = b.input("a3", Shape{4, 16, 32});
  const std::string w = b.param("w", Shape{32, 8});
  const std::string m = b.matmul(a3, w);
  const Graph g = b.finish({y, m});
  EXPECT_DOUBLE_EQ(flops_of(g, y), 2.0 * 32 * 128 * 64);
  EXPECT_DOUBLE_EQ(flops_of(g, m), 2.0 * 4 * 16 * 32 * 8);
}

TEST(OpFlops, ResNet50MatchesPublishedGFLOP) {
  // The end-to-end sanity anchor: ResNet-50 at bs=1 is 8.2 GFLOP
  // (4.1 GMACs), Table 3 row 11 reports 8.207.
  GraphBuilder dummy("d");
  (void)dummy;
  const Graph g = models::build_model("resnet50");
  double total = 0.0;
  for (const Node& node : g.nodes()) {
    Graph copy = g;  // shapes already inferred during construction
    total += op_def_for(node).flops(OpContext(g, node));
    (void)copy;
    break;  // cheap existence check only; the full sum is tested in zoo tests
  }
  EXPECT_GT(total, 0.0);
}

TEST(OpFlops, ElementwiseCosts) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{10, 10});
  const std::string y = b.input("y", Shape{10, 10});
  const std::string add = b.add(x, y);
  const std::string div = b.binary("Div", x, y);
  const std::string relu = b.act(x, "Relu");
  const std::string sigmoid = b.act(x, "Sigmoid");
  const std::string erf = b.act(x, "Erf");
  const Graph g = b.finish({add, div, relu, sigmoid, erf});
  EXPECT_DOUBLE_EQ(flops_of(g, add), 100.0);
  EXPECT_DOUBLE_EQ(flops_of(g, div), 100.0 * flop_cost::kDiv);
  EXPECT_DOUBLE_EQ(flops_of(g, relu), 100.0);
  EXPECT_DOUBLE_EQ(flops_of(g, sigmoid),
                   100.0 * (flop_cost::kExp + flop_cost::kDiv + 1.0));
  EXPECT_DOUBLE_EQ(flops_of(g, erf), 100.0 * flop_cost::kErf);
}

TEST(OpFlops, BroadcastBinaryCountsOutputElements) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{8, 1, 16});
  const std::string y = b.input("y", Shape{1, 4, 16});
  const std::string z = b.add(x, y);
  const Graph g = b.finish({z});
  EXPECT_DOUBLE_EQ(flops_of(g, z), 8.0 * 4 * 16);
}

TEST(OpFlops, ViewOpsAreFree) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 3, 4});
  const std::string r = b.reshape(x, {2, 12});
  const std::string f = b.flatten(x);
  const std::string t = b.transpose(x, {0, 2, 1});
  const Graph g = b.finish({r, f, t});
  EXPECT_DOUBLE_EQ(flops_of(g, r), 0.0);
  EXPECT_DOUBLE_EQ(flops_of(g, f), 0.0);
  EXPECT_DOUBLE_EQ(flops_of(g, t), 0.0);  // transpose moves data, no FLOP
}

TEST(OpFlops, PoolingAndReduction) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{1, 8, 16, 16});
  const std::string mp = b.maxpool(x, 2, 2, 0);
  const std::string gap = b.global_avgpool(x);
  const Graph g = b.finish({mp, gap});
  EXPECT_DOUBLE_EQ(flops_of(g, mp), 8.0 * 8 * 8 * 4);  // k*k compares per output
  EXPECT_DOUBLE_EQ(flops_of(g, gap),
                   8.0 * 16 * 16 + 8.0 * flop_cost::kDiv);
}

TEST(OpFlops, NormalizationPerElementCosts) {
  GraphBuilder b("g");
  const std::string x = b.input("x", Shape{2, 64, 8, 8});
  const std::string bn = b.batchnorm(x);
  const std::string t = b.input("t", Shape{2, 16, 32});
  const std::string ln = b.layernorm(t);
  const std::string sm = b.softmax(t);
  const Graph g = b.finish({bn, ln, sm});
  EXPECT_DOUBLE_EQ(flops_of(g, bn), 2.0 * 2 * 64 * 8 * 8);
  EXPECT_DOUBLE_EQ(flops_of(g, ln), 8.0 * 2 * 16 * 32);
  EXPECT_GT(flops_of(g, sm), 2.0 * 16 * 32);  // exp-dominated
}

TEST(OpFlops, FlopsScaleLinearlyWithBatch) {
  // Property: for every op with a batch dimension, FLOP(b) == b * FLOP(1).
  for (const int64_t batch : {2, 4, 8}) {
    GraphBuilder b1("g1");
    GraphBuilder bn("gn");
    const std::string x1 = b1.input("x", Shape{1, 8, 14, 14});
    const std::string xn = bn.input("x", Shape{batch, 8, 14, 14});
    const std::string y1 = b1.conv(x1, 16, 3, 1);
    const std::string yn = bn.conv(xn, 16, 3, 1);
    const Graph g1 = b1.finish({y1});
    const Graph gn = bn.finish({yn});
    EXPECT_DOUBLE_EQ(flops_of(gn, yn), batch * flops_of(g1, y1));
  }
}

}  // namespace
}  // namespace proof

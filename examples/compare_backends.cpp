// Backend comparison: build one model on all three simulated runtimes and
// inspect how differently they fuse — and how the layer-mapping ladder
// recovers the model-design correspondence in each information regime.
#include <iostream>

#include <proof/proof.hpp>

using namespace proof;

int main(int argc, char** argv) {
  const std::string model_id = argc > 1 ? argv[1] : "resnet50";
  const Graph model = models::build_model(model_id);
  const auto& a100 = hw::PlatformRegistry::instance().get("a100");

  backends::BuildConfig config;
  config.dtype = DType::kF16;
  config.batch = 32;

  std::cout << "model: " << model_id << " (" << model.num_nodes()
            << " design nodes)\n\n";
  report::TextTable table({"backend", "backend layers", "fused groups",
                           "opaque regions", "reorders", "mapping methods",
                           "coverage", "latency (A100)"});
  for (const char* backend_id : {"trt_sim", "ov_sim", "ort_sim"}) {
    const backends::Backend& backend =
        backends::BackendRegistry::instance().get(backend_id);
    const backends::Engine engine = backend.build(model, config, a100);

    size_t fused = 0;
    size_t opaque = 0;
    size_t reorders = 0;
    for (const backends::BackendLayer& layer : engine.layers()) {
      fused += layer.truth_nodes.size() > 1 ? 1 : 0;
      opaque += layer.is_opaque ? 1 : 0;
      reorders += layer.is_reorder ? 1 : 0;
    }

    const AnalyzeRepresentation ar(engine.analysis_graph());
    OptimizedAnalyzeRepresentation oar(ar);
    const mapping::LayerMapping map = mapping::map_layers(engine, oar);
    std::string methods;
    for (const auto method :
         {mapping::MapMethod::kExactName, mapping::MapMethod::kNameList,
          mapping::MapMethod::kIoSearch, mapping::MapMethod::kDependencyInference}) {
      const size_t n = map.count(method);
      if (n > 0) {
        if (!methods.empty()) {
          methods += ", ";
        }
        methods += std::string(mapping::map_method_name(method)) + ":" +
                   std::to_string(n);
      }
    }

    const backends::EngineProfile profile =
        engine.profile(hw::PlatformState(a100));
    table.add_row({backend.name(), std::to_string(engine.layers().size()),
                   std::to_string(fused), std::to_string(opaque),
                   std::to_string(reorders), methods,
                   units::fixed(100.0 * map.node_coverage(ar.num_nodes()), 1) + "%",
                   units::ms(profile.total_latency_s)});
  }
  std::cout << table.to_string();
  std::cout << "\nSame model, three optimization/fusion regimes: TensorRT-sim\n"
               "fuses aggressively and hides transformer regions behind opaque\n"
               "names (mapped by I/O search); OpenVINO-sim exposes fused-name\n"
               "metadata; ONNXRuntime-sim fuses conservatively, renames fused\n"
               "ops and inserts layout reorder layers (Figure 2).\n";
  return 0;
}

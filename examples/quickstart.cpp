// Quickstart: profile a zoo model on a simulated platform and read the
// end-to-end + layer-wise roofline report.
//
//   ./quickstart [model] [platform] [batch]
//   ./quickstart resnet50 a100 128
#include <iostream>

#include <proof/proof.hpp>

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "resnet50";
  const std::string platform = argc > 2 ? argv[2] : "a100";
  const int64_t batch = argc > 3 ? proof::strings::parse_int(argv[3]) : 128;

  proof::ProfileOptions options;
  options.platform_id = platform;
  // Pick a dtype the platform supports (fp16 where available, else fp32).
  const auto& desc = proof::hw::PlatformRegistry::instance().get(platform);
  options.dtype =
      desc.supports(proof::DType::kF16) ? proof::DType::kF16 : proof::DType::kF32;
  options.batch = batch;
  // kAuto uses the hardware-counter profiler where the platform has one
  // (data-center / desktop GPUs) and the analytical model everywhere else.
  options.mode = proof::MetricMode::kAuto;

  proof::Profiler profiler(options);
  const proof::ProfileReport report = profiler.run_zoo(model);

  std::cout << proof::summary_text(report) << "\n";
  std::cout << proof::layer_table_text(report, 15);
  if (report.layers.size() > 15) {
    std::cout << "... (" << report.layers.size() - 15 << " more layers)\n";
  }

  proof::report::SvgOptions svg;
  svg.title = model + " on " + desc.name;
  const std::string path = model + "_" + platform + "_roofline.svg";
  proof::report::save_svg(proof::report::render_roofline_svg(report.roofline, svg),
                          path);
  std::cout << "\nroofline chart written to " << path << "\n";
  return 0;
}

// Bring-your-own model: build a custom network with GraphBuilder, save it to
// the text format, reload it, and sweep it across every simulated platform.
#include <iostream>

#include <proof/proof.hpp>

using namespace proof;

namespace {

/// A small detection-style backbone with a feature-pyramid-ish head — the
/// kind of custom model a user would want to profile before deployment.
Graph build_custom_backbone() {
  models::GraphBuilder b("custom_backbone");
  std::string x = b.input("image", Shape{1, 3, 320, 320});
  x = b.conv_act(x, 32, 3, 2, "Silu");
  x = b.conv_act(x, 64, 3, 2, "Silu");
  std::string c3 = b.conv_act(x, 128, 3, 2, "Silu");     // /8
  std::string c4 = b.conv_act(c3, 256, 3, 2, "Silu");    // /16
  std::string c5 = b.conv_act(c4, 512, 3, 2, "Silu");    // /32

  // Top-down pyramid: upsample + lateral 1x1 + merge.
  AttrMap up;
  up.set("scales", std::vector<double>{1.0, 1.0, 2.0, 2.0});
  up.set("mode", std::string("nearest"));
  std::string p5 = b.conv(c5, 256, 1, 1);
  std::string p4 = b.add(b.node("Resize", {p5}, up), b.conv(c4, 256, 1, 1));
  AttrMap up2;
  up2.set("scales", std::vector<double>{1.0, 1.0, 2.0, 2.0});
  up2.set("mode", std::string("nearest"));
  std::string p3 = b.add(b.node("Resize", {p4}, up2), b.conv(c3, 256, 1, 1));

  std::vector<std::string> heads;
  for (const std::string& level : {p3, p4, p5}) {
    std::string h = b.conv_act(level, 256, 3, 1, "Silu");
    heads.push_back(b.conv(h, 84, 1, 1));  // class+box outputs
  }
  return b.finish(heads);
}

}  // namespace

int main() {
  Graph model = build_custom_backbone();
  std::cout << "built '" << model.name() << "': " << model.num_nodes()
            << " nodes, " << units::fixed(model.param_count() / 1e6, 2)
            << "M params\n";

  // Round-trip through the serialized text format (a deployable artifact).
  const std::string path = "custom_backbone.pg";
  save_graph(model, path);
  model = load_graph(path);
  std::cout << "saved + reloaded " << path << "\n\n";

  const AnalyzeRepresentation ar(model);
  std::cout << "analytical model: " << units::gflop(ar.total_flops()) << ", "
            << units::megabytes(ar.total_memory().total())
            << " DRAM traffic per inference (bs=1)\n\n";

  report::TextTable table({"platform", "dtype", "batch", "latency", "throughput",
                           "attained", "bound", "power"});
  for (const std::string& platform_id : hw::paper_platform_ids()) {
    const auto& desc = hw::PlatformRegistry::instance().get(platform_id);
    ProfileOptions opt;
    opt.platform_id = platform_id;
    opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
    opt.batch = desc.scenario.find("Edge") != std::string::npos ? 1 : 16;
    opt.mode = MetricMode::kPredicted;
    ProfileReport r;
    try {
      r = Profiler(opt).run(model);
    } catch (const ConfigError& e) {
      // Real deployments hit this too (the paper's NPU could not convert
      // several models); surface it instead of aborting the sweep.
      table.add_row({desc.name, std::string(dtype_name(opt.dtype)),
                     std::to_string(opt.batch), "conversion failed", "-", "-",
                     "-", "-"});
      continue;
    }
    const auto& e2e = r.roofline.end_to_end;
    table.add_row({desc.name, std::string(dtype_name(opt.dtype)),
                   std::to_string(opt.batch), units::ms(r.total_latency_s),
                   units::fixed(r.throughput_per_s(), 1) + "/s",
                   units::tflops(e2e.attained_flops()),
                   r.roofline.ceilings.memory_bound(e2e) ? "memory" : "compute",
                   units::fixed(r.power_w, 1) + " W"});
  }
  std::cout << table.to_string();
  return 0;
}

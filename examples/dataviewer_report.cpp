// Dataviewer dashboard: profile several models on one platform and emit a
// single self-contained HTML page (the paper's "PRoof dataviewer" output),
// plus the machine-readable JSON and a Chrome-trace timeline per model.
#include <iostream>

#include <proof/proof.hpp>

using namespace proof;

int main(int argc, char** argv) {
  const std::string platform = argc > 1 ? argv[1] : "a100";
  const std::vector<std::string> model_ids =
      argc > 2 ? std::vector<std::string>(argv + 2, argv + argc)
               : std::vector<std::string>{"resnet50", "vit_tiny",
                                          "shufflenetv2_10", "efficientnetv2_t"};

  const auto& desc = hw::PlatformRegistry::instance().get(platform);
  ProfileOptions opt;
  opt.platform_id = platform;
  opt.dtype = desc.supports(DType::kF16) ? DType::kF16 : DType::kF32;
  opt.batch = 32;
  opt.mode = MetricMode::kAuto;

  std::vector<ProfileReport> reports;
  reports.reserve(model_ids.size());
  for (const std::string& id : model_ids) {
    reports.push_back(Profiler(opt).run_zoo(id));
    const ProfileReport& r = reports.back();
    std::cout << id << ": " << units::ms(r.total_latency_s) << ", "
              << units::tflops(r.roofline.end_to_end.attained_flops()) << "\n";
    save_json(report_to_json(r), id + "_" + platform + ".json");
    save_chrome_trace(report_to_chrome_trace(r), id + "_" + platform + "_trace.json");
  }

  std::vector<report::HtmlSection> sections;
  for (size_t i = 0; i < reports.size(); ++i) {
    sections.push_back({model_ids[i] + " — " + desc.name, &reports[i]});
  }
  const std::string path = "dataviewer_" + platform + ".html";
  report::save_html(
      report::render_html_report("PRoof dataviewer — " + desc.name, sections),
      path);
  std::cout << "\nwrote " << path << " (open in a browser), per-model JSON and\n"
            << "Chrome traces (chrome://tracing) alongside it.\n";
  return 0;
}

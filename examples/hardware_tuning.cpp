// Hardware tuning walkthrough (paper §4.6): maximize EfficientNetV2-T
// throughput on a Jetson Orin NX within a 15 W power budget by choosing
// clock speeds with roofline guidance.
//
// Procedure:
//   1. establish the achieved roofline at candidate clocks (peak probe);
//   2. layer-wise analysis at max clocks, with the candidate memory-clock
//      bandwidth ceilings drawn in, to pick the memory clock;
//   3. binary-search the GPU clock just under the budget.
#include <iostream>

#include <proof/proof.hpp>

using namespace proof;

namespace {

constexpr double kBudgetW = 15.0;

hw::ClockSetting clocks(double gpu, double mem) {
  hw::ClockSetting c;
  c.gpu_mhz = gpu;
  c.mem_mhz = mem;
  c.cpu_cluster_mhz = {729.0, 0.0};  // CPU is not the bottleneck: one slow cluster
  return c;
}

ProfileReport run_workload(double gpu, double mem) {
  ProfileOptions opt;
  opt.platform_id = "orin_nx16";
  opt.dtype = DType::kF16;
  opt.batch = 128;
  opt.mode = MetricMode::kPredicted;
  opt.clocks = clocks(gpu, mem);
  return Profiler(opt).run_zoo("efficientnetv2_t");
}

}  // namespace

int main() {
  const auto& orin = hw::PlatformRegistry::instance().get("orin_nx16");

  std::cout << "Step 1: achieved roofline peaks at candidate clocks\n\n";
  backends::BuildConfig probe_cfg;
  probe_cfg.dtype = DType::kF16;
  const backends::Engine probe =
      backends::BackendRegistry::instance().get("trt_sim").build(
          models::build_peak_probe(), probe_cfg, orin);
  report::TextTable peaks_table({"GPU MHz", "EMC MHz", "achieved FLOP/s",
                                 "achieved BW", "power (full load)"});
  for (const auto& [gpu, mem] : std::vector<std::pair<double, double>>{
           {918, 3199}, {918, 2133}, {510, 3199}, {510, 665}}) {
    const hw::PlatformState state(orin, clocks(gpu, mem));
    const auto p = roofline::achieved_peaks(probe, state);
    peaks_table.add_row({units::fixed(gpu, 0), units::fixed(mem, 0),
                         units::tflops(p.flops), units::gbps(p.bw),
                         units::fixed(hw::PowerModel(state).power_w({1, 1}), 1) +
                             " W"});
  }
  std::cout << peaks_table.to_string() << "\n";

  std::cout << "Step 2: layer-wise roofline at max clocks with EMC ceilings\n\n";
  ProfileReport full = run_workload(918, 3199);
  const double bw_2133 =
      hw::LatencyModel(hw::PlatformState(orin, clocks(918, 2133)))
          .achieved_bandwidth();
  const double bw_665 =
      hw::LatencyModel(hw::PlatformState(orin, clocks(918, 665)))
          .achieved_bandwidth();
  double share_above_2133 = 0.0;
  double share_above_665 = 0.0;
  for (const roofline::Point& p : full.roofline.layers) {
    share_above_2133 += p.attained_bandwidth() > bw_2133 ? p.latency_share : 0.0;
    share_above_665 += p.attained_bandwidth() > bw_665 ? p.latency_share : 0.0;
  }
  std::cout << "latency share needing more BW than EMC 2133 provides: "
            << units::fixed(share_above_2133 * 100, 1) << "%\n";
  std::cout << "latency share needing more BW than EMC  665 provides: "
            << units::fixed(share_above_665 * 100, 1) << "%\n";
  std::cout << "-> dropping EMC to 2133 MHz is a cheap power win; 665 MHz would\n"
               "   throttle most of the model.  Select EMC = 2133 MHz.\n\n";

  std::cout << "Step 3: binary-search the GPU clock under " << kBudgetW << " W\n\n";
  const auto& steps = orin.gpu_clock.available_mhz;
  size_t lo = 0;
  size_t hi = steps.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi + 1) / 2;
    const ProfileReport r = run_workload(steps[mid], 2133);
    std::cout << "  GPU " << units::fixed(steps[mid], 0) << " MHz: "
              << units::fixed(r.power_w, 1) << " W, "
              << units::ms(r.total_latency_s) << "\n";
    if (r.power_w <= kBudgetW) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  const ProfileReport tuned = run_workload(steps[lo], 2133);
  const ProfileReport stock = run_workload(408, 3199);  // stock "25W"-style profile
  std::cout << "\nSelected: GPU " << units::fixed(steps[lo], 0)
            << " MHz / EMC 2133 MHz -> " << units::ms(tuned.total_latency_s)
            << " at " << units::fixed(tuned.power_w, 1) << " W\n";
  std::cout << "Stock-style alternative (GPU 408 / EMC 3199): "
            << units::ms(stock.total_latency_s) << " at "
            << units::fixed(stock.power_w, 1) << " W\n";
  std::cout << "Tuned profile is " << units::fixed(stock.total_latency_s /
                                                       tuned.total_latency_s,
                                                   2)
            << "x faster within the same budget (paper: 320.1 ms @ 14.7 W).\n";
  return 0;
}

// Distributed-inference planning (the paper's §5 future-work direction):
// estimate pipeline- and tensor-parallel deployments of a large model across
// multiple simulated A100s and different interconnects, and check the memory
// footprint per device.
#include <iostream>

#include <proof/proof.hpp>

using namespace proof;

int main(int argc, char** argv) {
  const std::string model_id = argc > 1 ? argv[1] : "sd_unet";
  const Graph model = models::build_model(model_id);

  ProfileOptions opt;
  opt.platform_id = "a100";
  opt.dtype = DType::kF16;
  opt.batch = model_id == "sd_unet" ? 4 : 32;
  opt.mode = MetricMode::kPredicted;

  // Device memory pressure motivates splitting in the first place.
  Graph deployed = model;
  set_batch_size(deployed, opt.batch);
  convert_float_dtype(deployed, opt.dtype);
  const MemoryFootprint fp = memory_footprint(deployed);
  std::cout << "model: " << model.name() << "  weights "
            << units::megabytes(fp.weight_bytes) << ", peak activations "
            << units::megabytes(fp.peak_activation_bytes) << " (peak at "
            << fp.peak_at_node << ")\n\n";

  for (const auto& link : {distributed::nvlink4(), distributed::pcie_gen4_x16(),
                           distributed::ethernet_100g()}) {
    std::cout << "==== interconnect: " << link.name << " ("
              << units::gbps(link.bandwidth) << ") ====\n\n";
    for (const int devices : {2, 4}) {
      std::cout << "-- " << devices << "-stage pipeline --\n";
      const auto pipe =
          distributed::profile_pipeline(model, opt, devices, link, 16);
      std::cout << distributed::pipeline_text(pipe) << "\n";
      std::cout << "-- " << devices << "-way tensor parallel --\n";
      const auto tp = distributed::profile_tensor_parallel(model, opt, devices, link);
      std::cout << distributed::tensor_parallel_text(tp) << "\n";
    }
  }
  std::cout << "Reading: pipelining tolerates slow links (only stage-boundary\n"
               "activations cross devices) but pays a bubble; tensor parallelism\n"
               "cuts single-batch latency but demands NVLink-class bandwidth for\n"
               "its per-layer allreduces.\n";
  return 0;
}

// Model-design optimization walkthrough (paper §4.5).
//
// Uses PRoof the way a model designer would: profile ShuffleNetV2 x1.0 on a
// data-center GPU, notice the end-to-end FLOP/s is nowhere near the peak,
// drill into the layer-wise roofline to find that the Shuffle operation's
// Transpose / data-copy layers dominate latency, and verify that the
// modified architecture (full-channel pointwise convs + explicit residual,
// no Shuffle) trades extra FLOP for a large real-world speedup.
#include <iostream>
#include <map>

#include <proof/proof.hpp>

using namespace proof;

namespace {

ProfileReport profile(const std::string& model, int64_t batch) {
  ProfileOptions options;
  options.platform_id = "a100";
  options.dtype = DType::kF16;
  options.batch = batch;
  options.mode = MetricMode::kPredicted;  // prediction mode, as in the paper
  return Profiler(options).run_zoo(model);
}

void dissect(const ProfileReport& r) {
  std::map<OpClass, double> latency_by_class;
  for (const LayerReport& layer : r.layers) {
    latency_by_class[layer.cls] += layer.latency_s;
  }
  report::TextTable table({"workload class", "latency", "share"});
  for (const auto& [cls, t] : latency_by_class) {
    table.add_row({std::string(op_class_name(cls)), units::ms(t),
                   units::fixed(100.0 * t / r.total_latency_s, 1) + "%"});
  }
  std::cout << table.to_string();
}

}  // namespace

int main() {
  std::cout << "Step 1: end-to-end profile of ShuffleNetV2 x1.0 (fp16, bs 2048)\n\n";
  const ProfileReport original = profile("shufflenetv2_10", 2048);
  std::cout << summary_text(original) << "\n";
  std::cout << "The model attains "
            << units::tflops(original.roofline.end_to_end.attained_flops())
            << " of the A100's "
            << units::tflops(original.roofline.ceilings.peak_flops)
            << " theoretical peak — time to look layer-wise.\n\n";

  std::cout << "Step 2: where does the time go?\n\n";
  dissect(original);
  std::cout << "\nThe Transpose (channel shuffle) and data-copy layers are "
               "memory-bound\nand contribute the majority of the latency while "
               "performing zero FLOP.\n\n";

  std::cout << "Step 3: the slowest non-conv layers and their model-design "
               "origins\n\n";
  std::vector<const LayerReport*> movers;
  for (const LayerReport& layer : original.layers) {
    if (layer.cls == OpClass::kDataMovement || layer.cls == OpClass::kCopy) {
      movers.push_back(&layer);
    }
  }
  std::sort(movers.begin(), movers.end(), [](const auto* a, const auto* b) {
    return a->latency_s > b->latency_s;
  });
  for (size_t i = 0; i < std::min<size_t>(5, movers.size()); ++i) {
    std::cout << "  " << movers[i]->backend_layer << "  ("
              << units::ms(movers[i]->latency_s) << ", maps to "
              << movers[i]->model_nodes.size()
              << " model node(s) via "
              << mapping::map_method_name(movers[i]->method) << ")\n";
  }

  std::cout << "\nStep 4: profile the modified architecture (Figure 7: no "
               "Shuffle,\nfull-channel pointwise convs, explicit residual "
               "Add)\n\n";
  const ProfileReport modified = profile("shufflenetv2_10_mod", 2048);
  std::cout << summary_text(modified) << "\n";
  dissect(modified);

  const double speedup = original.total_latency_s / modified.total_latency_s;
  std::cout << "\nResult: " << units::fixed(modified.roofline.end_to_end.flops /
                                                original.roofline.end_to_end.flops,
                                            2)
            << "x the FLOP but " << units::fixed(speedup, 2)
            << "x the throughput (" << units::fixed(original.throughput_per_s(), 0)
            << " -> " << units::fixed(modified.throughput_per_s(), 0)
            << " images/s) — the FLOP-for-bandwidth trade §4.5 describes.\n";
  return 0;
}

// PRoof public API façade.
//
// A C++20 reproduction of "PRoof: A Comprehensive Hierarchical Profiling
// Framework for Deep Neural Networks with Roofline Analysis" (ICPP 2024).
//
// Quickstart:
//
//   #include <proof/proof.hpp>
//
//   proof::ProfileOptions opt;
//   opt.platform_id = "a100";
//   opt.dtype = proof::DType::kF16;
//   opt.batch = 128;
//   proof::Profiler profiler(opt);
//   proof::ProfileReport report = profiler.run_zoo("resnet50");
//   std::cout << proof::summary_text(report);
//   std::cout << proof::layer_table_text(report);
//
// Layers of the API (all usable directly):
//   * graph/ops/analysis  — model IR, operator defines, analytical model
//   * models              — the 20-model evaluation zoo + peak probe
//   * backends            — simulated TensorRT / OpenVINO / ONNX Runtime
//   * mapping             — backend-layer -> model-layer reconstruction
//   * hw                  — platform descriptors, latency/power simulation,
//                           NCU-like counter profiling
//   * roofline / report   — roofline math, tables, CSV, SVG charts
//   * obs                 — the framework's own metrics/span self-profiling
//   * core                — the Profiler orchestrator tying it together
//   * opt                 — the guarded closed-loop optimizer (proof optimize)
//   * serve               — the profiling-as-a-service daemon (proof serve)
#pragma once

#include "analysis/analyze_representation.hpp"
#include "analysis/critical_path/critical_path.hpp"
#include "analysis/critical_path/timeline.hpp"
#include "analysis/llm_traffic.hpp"
#include "analysis/memory_footprint.hpp"
#include "analysis/optimized_representation.hpp"
#include "analysis/quantize.hpp"
#include "analysis/shape_inference.hpp"
#include "backends/backend.hpp"
#include "core/prep_cache.hpp"
#include "core/profiler.hpp"
#include "core/chrome_trace.hpp"
#include "core/compare.hpp"
#include "core/decode_sweep.hpp"
#include "core/html_report.hpp"
#include "core/report_json.hpp"
#include "core/report_text.hpp"
#include "core/sweep.hpp"
#include "distributed/parallel.hpp"
#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "hw/counters.hpp"
#include "hw/latency_model.hpp"
#include "hw/platform.hpp"
#include "hw/power.hpp"
#include "mapping/layer_mapping.hpp"
#include "mapping/stack_mapping.hpp"
#include "models/builder.hpp"
#include "models/summary.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/self_profile.hpp"
#include "obs/span.hpp"
#include "ops/op_def.hpp"
#include "opt/bottleneck.hpp"
#include "opt/guard.hpp"
#include "opt/optimizer.hpp"
#include "opt/variant.hpp"
#include "report/csv.hpp"
#include "report/svg_roofline.hpp"
#include "report/table.hpp"
#include "report/time_view.hpp"
#include "roofline/peak_test.hpp"
#include "roofline/roofline.hpp"
#include "roofline/time_roofline.hpp"
#include "serve/model_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/units.hpp"
